package sketchio

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"imdist/internal/core"
	"imdist/internal/diffusion"
	"imdist/internal/graph"
)

// # Checkpoint format (version 2, little endian)
//
// A checkpoint persists the state of an incremental build
// (core.SketchBuilder) so it can resume after a crash or restart. Unlike the
// v1 sketch format — whose header bakes in the final RR-set count, so the
// file can only be written once the build is done — a checkpoint is
// append-only: a fixed header followed by any number of self-contained
// segments, each carrying its own CRC-32C:
//
//	header (40 bytes):
//	offset  size  field
//	0       4     magic "IMSK"
//	4       2     format version (2)
//	6       1     diffusion model (0 = IC, 1 = LT)
//	7       1     reserved (0)
//	8       8     build seed
//	16      8     number of vertices n
//	24      8     influence-graph fingerprint (FNV-1a of edges + probabilities)
//	32      8     reserved (0)
//
//	segment, repeated until EOF:
//	0       4     segment magic "SEGM"
//	4       4     reserved (0)
//	8       8     RR-set count of this segment
//	16      8     payload length in bytes
//	24      ...   records, exactly as in the v1 payload
//	24+len  4     CRC-32C of the segment header + payload
//
// Because a builder's RR-set sequence is pinned by (seed, index), a
// checkpoint only has to persist a prefix of that sequence: a torn final
// segment (crash mid-append) is simply truncated away on the next
// OpenCheckpoint and its sets are regenerated — deterministically identical —
// by the resumed build. The v1 reader is unchanged; finished sketches are
// still served from v1 files.

// CheckpointVersion is the on-disk version of the append-only checkpoint
// format.
const CheckpointVersion = 2

const (
	segMagic     = "SEGM"
	segHeaderLen = 24
)

// ErrCheckpointMeta reports a checkpoint whose recorded build identity
// (model, seed, vertex count) does not match the build it was offered to.
var ErrCheckpointMeta = errors.New("sketchio: checkpoint metadata mismatch")

// CheckpointMeta is the build identity recorded in a checkpoint header. Two
// builds with equal metadata generate identical RR-set sequences, which is
// what makes resuming from a prefix sound.
type CheckpointMeta struct {
	Model diffusion.Model
	Seed  uint64
	N     int
	// GraphHash fingerprints the influence graph — structure and edge
	// probabilities (GraphFingerprint). The RR-set sequence depends on the
	// whole graph, not just its vertex count, so resuming against a graph
	// with the same n but different edges or a different edge-probability
	// model would silently splice two unrelated sequences; the fingerprint
	// turns that into ErrCheckpointMeta.
	GraphHash uint64
}

// GraphFingerprint digests an influence graph's structure and edge
// probabilities into the 64-bit FNV-1a value recorded in checkpoint headers:
// vertex count, then every (source, target, probability-bits) triple in
// adjacency order. One linear pass, called once per build or resume.
func GraphFingerprint(ig *graph.InfluenceGraph) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mix(uint64(ig.NumVertices()))
	for v := 0; v < ig.NumVertices(); v++ {
		neigh := ig.OutNeighbors(graph.VertexID(v))
		probs := ig.OutProbabilities(graph.VertexID(v))
		mix(uint64(v))
		for i, u := range neigh {
			mix(uint64(u))
			mix(math.Float64bits(probs[i]))
		}
	}
	return h
}

// checkpointMetaFor derives the full checkpoint identity of a build.
func checkpointMetaFor(ig *graph.InfluenceGraph, model diffusion.Model, seed uint64) CheckpointMeta {
	return CheckpointMeta{Model: model, Seed: seed, N: ig.NumVertices(), GraphHash: GraphFingerprint(ig)}
}

// BuildCheckpointMeta derives the checkpoint identity of a build over ig with
// the given model and seed — the metadata OpenSpillStore and OpenCheckpoint
// verify a resumed file against.
func BuildCheckpointMeta(ig *graph.InfluenceGraph, model diffusion.Model, seed uint64) CheckpointMeta {
	return checkpointMetaFor(ig, model, seed)
}

func (m CheckpointMeta) validate() error {
	if m.N < 1 || m.N > math.MaxInt32 {
		return fmt.Errorf("sketchio: checkpoint vertex count %d outside [1, 2^31)", m.N)
	}
	switch m.Model {
	case diffusion.IC, diffusion.LT:
		return nil
	default:
		return fmt.Errorf("sketchio: unknown diffusion model %d", m.Model)
	}
}

func encodeCheckpointHeader(m CheckpointMeta) []byte {
	hdr := make([]byte, headerLen)
	copy(hdr, magic)
	binary.LittleEndian.PutUint16(hdr[4:], CheckpointVersion)
	hdr[6] = byte(m.Model)
	binary.LittleEndian.PutUint64(hdr[8:], m.Seed)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(m.N))
	binary.LittleEndian.PutUint64(hdr[24:], m.GraphHash)
	return hdr
}

func parseCheckpointHeader(hdr []byte) (CheckpointMeta, error) {
	var m CheckpointMeta
	if string(hdr[:4]) != magic {
		return m, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != CheckpointVersion {
		return m, fmt.Errorf("%w: got %d, checkpoints are version %d", ErrVersion, v, CheckpointVersion)
	}
	switch diffusion.Model(hdr[6]) {
	case diffusion.IC, diffusion.LT:
		m.Model = diffusion.Model(hdr[6])
	default:
		return m, fmt.Errorf("%w: unknown diffusion model %d", ErrCorrupt, hdr[6])
	}
	if hdr[7] != 0 {
		return m, fmt.Errorf("%w: nonzero reserved byte", ErrCorrupt)
	}
	m.Seed = binary.LittleEndian.Uint64(hdr[8:])
	n := binary.LittleEndian.Uint64(hdr[16:])
	if n < 1 || n > math.MaxInt32 {
		return m, fmt.Errorf("%w: vertex count %d outside [1, 2^31)", ErrCorrupt, n)
	}
	m.GraphHash = binary.LittleEndian.Uint64(hdr[24:])
	for _, b := range hdr[32:headerLen] {
		if b != 0 {
			return m, fmt.Errorf("%w: nonzero reserved checkpoint header bytes", ErrCorrupt)
		}
	}
	m.N = int(n)
	return m, nil
}

// segmentMeta is a decoded segment header.
type segmentMeta struct {
	count      int
	payloadLen uint64
}

func parseSegmentHeader(hdr []byte, totalSoFar int) (segmentMeta, error) {
	var s segmentMeta
	if string(hdr[:4]) != segMagic {
		return s, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(hdr[4:]) != 0 {
		return s, fmt.Errorf("%w: nonzero reserved segment bytes", ErrCorrupt)
	}
	count := binary.LittleEndian.Uint64(hdr[8:])
	payloadLen := binary.LittleEndian.Uint64(hdr[16:])
	if count < 1 || count > math.MaxInt32 || uint64(totalSoFar)+count > math.MaxInt32 {
		return s, fmt.Errorf("%w: segment RR-set count %d impossible", ErrCorrupt, count)
	}
	if payloadLen < 4*count || payloadLen > 1<<56 {
		return s, fmt.Errorf("%w: segment payload length %d impossible for %d RR sets", ErrCorrupt, payloadLen, count)
	}
	s.count = int(count)
	s.payloadLen = payloadLen
	return s, nil
}

// readSegment decodes one segment from br, validating its CRC and every
// vertex id against [0, n). It returns io.EOF at a clean end-of-stream (zero
// bytes where a segment would start); every other failure — including a
// partially written segment — is an error wrapping ErrCorrupt. count is the
// segment's RR-set count, size its total encoded size, stored the verified
// CRC-32C. The sets' backing storage comes from arena; with a nil arena the
// records are validated but not materialized (sets is nil) — the Inspect and
// spill-store-recovery paths.
func readSegment(br *bufio.Reader, n, totalSoFar int, arena *vertexArena) (sets [][]graph.VertexID, count int, size int64, stored uint32, err error) {
	hdr := make([]byte, segHeaderLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, 0, 0, 0, io.EOF // clean boundary
		}
		return nil, 0, 0, 0, readErr(err)
	}
	s, err := parseSegmentHeader(hdr, totalSoFar)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	crc := crc32.New(castagnoliTab)
	crc.Write(hdr)
	sets, err = readRecords(io.TeeReader(br, crc), n, s.count, s.payloadLen, arena)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return nil, 0, 0, 0, readErr(err)
	}
	stored = binary.LittleEndian.Uint32(tail[:])
	if stored != crc.Sum32() {
		return nil, 0, 0, 0, ErrChecksum
	}
	return sets, s.count, segHeaderLen + int64(s.payloadLen) + 4, stored, nil
}

// writeSegment appends one CRC-framed segment holding sets to w.
func writeSegment(w io.Writer, sets [][]graph.VertexID) error {
	return writeSegmentFunc(w, len(sets), recordsLen(sets), func(i int) []graph.VertexID { return sets[i] })
}

// writeSegmentFunc appends one CRC-framed segment of count records, obtained
// from get, to w. payload must be the exact encoded size of the records —
// callers that track it incrementally (the builder's store stats) avoid a
// sizing pass over data that may live on disk.
func writeSegmentFunc(w io.Writer, count int, payload uint64, get func(int) []graph.VertexID) error {
	hdr := make([]byte, segHeaderLen)
	copy(hdr, segMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(count))
	binary.LittleEndian.PutUint64(hdr[16:], payload)
	crc := crc32.New(castagnoliTab)
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<16)
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	if err := writeRecords(bw, count, get); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// WriteCheckpoint streams a complete snapshot checkpoint of b — header plus
// one segment holding every set generated so far — to w. For an append-only
// on-disk checkpoint that grows with the build, use OpenCheckpoint instead.
func WriteCheckpoint(w io.Writer, b *core.SketchBuilder) error {
	if b == nil {
		return errors.New("sketchio: nil builder")
	}
	meta := checkpointMetaFor(b.Graph(), b.Model(), b.Seed())
	if _, err := w.Write(encodeCheckpointHeader(meta)); err != nil {
		return err
	}
	count := b.NumSets()
	if count == 0 {
		return nil
	}
	// Stream straight out of the builder's store — no [][]VertexID snapshot,
	// so a disk-backed build checkpoints without materializing its sets.
	return writeSegmentFunc(w, count, uint64(b.StoreStats().PayloadBytes), b.SetAt)
}

// ReadCheckpoint strictly decodes a checkpoint stream: metadata plus the
// concatenation of every segment's RR sets, decoded in one pass with the
// sets' backing storage carved from a shared arena (one large allocation per
// ~4 MiB of payload rather than one per record). Any damage — a torn final
// segment included — is an error; crash recovery by truncation is
// OpenCheckpoint's job, where the file can actually be repaired.
func ReadCheckpoint(r io.Reader) (CheckpointMeta, [][]graph.VertexID, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return CheckpointMeta{}, nil, readErr(err)
	}
	meta, err := parseCheckpointHeader(hdr)
	if err != nil {
		return CheckpointMeta{}, nil, err
	}
	var sets [][]graph.VertexID
	arena := &vertexArena{}
	for {
		segSets, _, _, _, err := readSegment(br, meta.N, len(sets), arena)
		if err == io.EOF {
			return meta, sets, nil
		}
		if err != nil {
			return CheckpointMeta{}, nil, err
		}
		sets = append(sets, segSets...)
	}
}

// ResumeBuilder reconstructs an incremental builder from the checkpoint
// stream r, ready to continue generating at the next RR-set index. ig must be
// the very influence graph the checkpoint was built over — the recorded
// fingerprint covers edges and probabilities, so a resume against the same
// dataset under a different edge-probability model (or a different graph of
// the same size) is rejected with ErrCheckpointMeta instead of silently
// splicing two unrelated RR-set sequences.
func ResumeBuilder(r io.Reader, ig *graph.InfluenceGraph, workers int) (*core.SketchBuilder, error) {
	meta, sets, err := ReadCheckpoint(r)
	if err != nil {
		return nil, err
	}
	if ig == nil || ig.NumVertices() != meta.N {
		return nil, fmt.Errorf("%w: checkpoint is for a %d-vertex graph", ErrCheckpointMeta, meta.N)
	}
	if hash := GraphFingerprint(ig); hash != meta.GraphHash {
		return nil, fmt.Errorf("%w: checkpoint graph fingerprint %016x, build graph %016x (different edges or edge probabilities)",
			ErrCheckpointMeta, meta.GraphHash, hash)
	}
	// ReadCheckpoint already validated every vertex id while decoding, so go
	// through the trusted store constructor: one decode pass total, no second
	// validation sweep over the materialized sets.
	return core.NewSketchBuilderFromStore(ig, meta.Model, workers, meta.Seed, core.NewMemStore(sets))
}

// Checkpointer appends build progress to an on-disk checkpoint file. It is
// not safe for concurrent use; a build has one writer.
type Checkpointer struct {
	f    *os.File
	meta CheckpointMeta
	sets int
	err  error // sticky: a failed append leaves an untrusted tail
}

// OpenCheckpoint opens (or creates) the append-only checkpoint file at path
// for the build identified by meta and returns the RR sets it already holds.
//
// A fresh file gets the v2 header. An existing file must carry the same
// metadata (ErrCheckpointMeta otherwise — resuming a different build's
// checkpoint would splice two unrelated RR-set sequences). If the file ends
// in a torn or corrupt segment — a crash mid-append — everything from the
// first bad byte on is truncated away: the surviving prefix is exactly a
// shorter checkpoint of the same deterministic sequence, and the resumed
// build regenerates the lost sets identically.
func OpenCheckpoint(path string, meta CheckpointMeta) (*Checkpointer, [][]graph.VertexID, error) {
	if err := meta.validate(); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	if st.Size() == 0 {
		if _, err := f.Write(encodeCheckpointHeader(meta)); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
		return &Checkpointer{f: f, meta: meta}, nil, nil
	}

	br := bufio.NewReaderSize(f, 1<<16)
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		_ = f.Close()
		return nil, nil, readErr(err)
	}
	got, err := parseCheckpointHeader(hdr)
	if err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	if got != meta {
		_ = f.Close()
		return nil, nil, fmt.Errorf("%w: file records model=%v seed=%d n=%d graph=%016x, build is model=%v seed=%d n=%d graph=%016x",
			ErrCheckpointMeta, got.Model, got.Seed, got.N, got.GraphHash, meta.Model, meta.Seed, meta.N, meta.GraphHash)
	}
	var sets [][]graph.VertexID
	arena := &vertexArena{}
	off := int64(headerLen)
	for {
		segSets, _, size, _, err := readSegment(br, meta.N, len(sets), arena)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn or corrupt tail: drop it. The prefix up to off is intact
			// (every earlier segment passed its CRC), and the deterministic
			// build regenerates whatever was lost.
			if terr := f.Truncate(off); terr != nil {
				_ = f.Close()
				return nil, nil, terr
			}
			break
		}
		sets = append(sets, segSets...)
		off += size
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	return &Checkpointer{f: f, meta: meta, sets: len(sets)}, sets, nil
}

// NumSets returns the number of RR sets the file durably holds.
func (c *Checkpointer) NumSets() int { return c.sets }

// Append durably appends sets as one segment (written, then fsynced).
// Appending no sets is a no-op. After a failed append the Checkpointer
// refuses further writes — the file tail is untrusted — but the file itself
// remains resumable: the next OpenCheckpoint truncates the damage away.
func (c *Checkpointer) Append(sets [][]graph.VertexID) error {
	if c.err != nil {
		return c.err
	}
	if len(sets) == 0 {
		return nil
	}
	if err := writeSegment(c.f, sets); err != nil {
		c.err = fmt.Errorf("sketchio: checkpoint append failed, further appends disabled: %w", err)
		return err
	}
	if err := c.f.Sync(); err != nil {
		c.err = fmt.Errorf("sketchio: checkpoint sync failed, further appends disabled: %w", err)
		return err
	}
	c.sets += len(sets)
	return nil
}

// Close closes the underlying file; the checkpoint remains on disk for a
// later resume.
func (c *Checkpointer) Close() error { return c.f.Close() }

// BuildWithCheckpoint runs a checkpointed adaptive build end to end: it opens
// (or resumes) the checkpoint at path, reconstructs the builder from the sets
// already on disk, and runs BuildToTarget with a progress hook that appends
// each round's new sets as one durable segment before handing control to
// target.Progress. On any exit — success, cancellation, append failure — the
// checkpoint holds a clean prefix of the build, so the same call with the
// same arguments continues where it left off.
//
// The returned builder allows the caller to finalize (builder.Oracle) or
// inspect the build regardless of how it ended.
func BuildWithCheckpoint(ctx context.Context, path string, ig *graph.InfluenceGraph, model diffusion.Model, workers int, seed uint64, target core.BuildTarget) (*core.SketchBuilder, core.BuildResult, error) {
	if ig == nil || ig.NumVertices() == 0 {
		return nil, core.BuildResult{}, core.ErrEmptyGraph
	}
	meta := checkpointMetaFor(ig, model, seed)
	cp, sets, err := OpenCheckpoint(path, meta)
	if err != nil {
		return nil, core.BuildResult{}, err
	}
	defer cp.Close()
	// OpenCheckpoint validated the sets while decoding them; trust the store.
	b, err := core.NewSketchBuilderFromStore(ig, model, workers, seed, core.NewMemStore(sets))
	if err != nil {
		return nil, core.BuildResult{}, err
	}
	durable := b.NumSets()
	userProgress := target.Progress
	target.Progress = func(p core.BuildProgress) error {
		fresh, err := b.SetsRange(durable, p.Sets)
		if err != nil {
			return err
		}
		if err := cp.Append(fresh); err != nil {
			return err
		}
		durable = p.Sets
		if userProgress != nil {
			return userProgress(p)
		}
		return nil
	}
	res, err := b.BuildToTarget(ctx, target)
	return b, res, err
}
