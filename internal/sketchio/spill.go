package sketchio

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"

	"imdist/internal/core"
	"imdist/internal/diffusion"
	"imdist/internal/graph"
)

// Spill-store defaults.
const (
	// DefaultSpillMemBudget bounds the decoded working set a SpillStore keeps
	// on the heap when the caller passes budget 0.
	DefaultSpillMemBudget = 64 << 20
	// DefaultSpillMaxBatch caps one append round of a spill build. The
	// in-flight batch lives on the heap until the store persists it —
	// independent of the store's budget — so spill builds keep rounds small:
	// 2^16 sets is a few MiB on typical graphs.
	DefaultSpillMaxBatch = 1 << 16
)

// spillSeg locates one durable segment inside the spill file.
type spillSeg struct {
	off     int64  // file offset of the segment header
	first   int    // global index of the segment's first RR set
	count   int    // RR sets in the segment
	payload uint64 // encoded record bytes (the segment is segHeaderLen+payload+4 on disk)
}

// spillCacheEntry is one decoded segment resident in the working set.
type spillCacheEntry struct {
	sets    [][]graph.VertexID
	bytes   int64
	lastUse int64
}

// SpillStore is the disk-backed core.RRStore: every appended batch is written
// through as one CRC-framed v2 checkpoint segment (written, then fsynced)
// before Append returns, so the file is simultaneously the primary build
// medium and a crash-consistent checkpoint — reopening it resumes the build
// exactly where the last durable segment left off, torn tail truncated away.
//
// Reads go through the file: a segment index (built once at open, extended on
// append) maps a set index to its segment, the segment's bytes are read
// via mmap when available, and decoded segments live in a small
// least-recently-used working set bounded by the configured byte budget.
// Decoded sets are heap copies, never aliases of the mapping, so remapping
// after growth and evicting under budget pressure are both safe while a
// caller still holds a previously returned slice.
//
// Because the builder's RR-set sequence depends only on (seed, index), a
// build through a SpillStore produces byte-for-byte the sketch an in-memory
// build would — the store changes where bytes wait, never what they are.
//
// A SpillStore is safe for concurrent reads with one concurrent Append, per
// the core.RRStore contract.
type SpillStore struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	meta   CheckpointMeta
	budget int64

	segs    []spillSeg
	numSets int
	size    int64 // durable file size
	payload int64 // total encoded record bytes across segments

	mmapData   []byte
	unmap      func()
	mappedSize int64

	cache      map[int]*spillCacheEntry // segment index → decoded sets
	cacheBytes int64
	tick       int64

	err error // sticky: a failed append leaves an untrusted tail
}

var _ core.RRStore = (*SpillStore)(nil)

// OpenSpillStore opens (or creates) the spill file at path for the build
// identified by meta. budget bounds the decoded working set in bytes: 0
// selects DefaultSpillMemBudget, negative means unbounded (the store then
// degenerates to a write-through in-memory store with a durable mirror).
//
// A fresh file gets the v2 checkpoint header. An existing file must carry the
// same metadata (ErrCheckpointMeta otherwise) and is scanned segment by
// segment — CRCs and vertex ids verified, nothing materialized — to rebuild
// the segment index; a torn or corrupt tail is truncated away exactly as
// OpenCheckpoint does, and the resumed build regenerates the lost sets
// deterministically. The caller owns the store and must Close it; Close
// leaves the file on disk for a later resume or for cleanup by the caller.
func OpenSpillStore(path string, meta CheckpointMeta, budget int64) (*SpillStore, error) {
	if err := meta.validate(); err != nil {
		return nil, err
	}
	if budget == 0 {
		budget = DefaultSpillMemBudget
	} else if budget < 0 {
		budget = math.MaxInt64
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	s := &SpillStore{f: f, path: path, meta: meta, budget: budget, cache: make(map[int]*spillCacheEntry)}
	if st.Size() == 0 {
		if _, err := f.Write(encodeCheckpointHeader(meta)); err != nil {
			_ = f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, err
		}
		s.size = headerLen
		return s, nil
	}

	br := bufio.NewReaderSize(f, 1<<16)
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		_ = f.Close()
		return nil, readErr(err)
	}
	got, err := parseCheckpointHeader(hdr)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	if got != meta {
		_ = f.Close()
		return nil, fmt.Errorf("%w: file records model=%v seed=%d n=%d graph=%016x, build is model=%v seed=%d n=%d graph=%016x",
			ErrCheckpointMeta, got.Model, got.Seed, got.N, got.GraphHash, meta.Model, meta.Seed, meta.N, meta.GraphHash)
	}
	off := int64(headerLen)
	for {
		// Validate-only pass (nil arena): CRCs and vertex ids are checked now
		// so later reads can trust the index without rescanning.
		_, count, size, _, err := readSegment(br, meta.N, s.numSets, nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn or corrupt tail from a crash mid-append: drop it, the
			// deterministic build regenerates whatever was lost.
			if terr := f.Truncate(off); terr != nil {
				_ = f.Close()
				return nil, terr
			}
			break
		}
		payload := uint64(size) - segHeaderLen - 4
		s.segs = append(s.segs, spillSeg{off: off, first: s.numSets, count: count, payload: payload})
		s.numSets += count
		s.payload += int64(payload)
		off += size
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, err
	}
	s.size = off
	return s, nil
}

// Path returns the spill file's path.
func (s *SpillStore) Path() string { return s.path }

// Meta returns the build identity recorded in the spill file's header.
func (s *SpillStore) Meta() CheckpointMeta { return s.meta }

// NumSets returns the number of RR sets durably held.
func (s *SpillStore) NumSets() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.numSets
}

// Append writes batch through to disk as one fsynced segment, extends the
// segment index, and pins the decoded batch in the working set (evicting the
// least recently used segments beyond the budget). The batch is durable when
// Append returns. After a failed append the store refuses further writes —
// the file tail is untrusted — but the file remains resumable: the next
// OpenSpillStore truncates the damage away.
func (s *SpillStore) Append(batch [][]graph.VertexID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if len(batch) == 0 {
		return nil
	}
	payload := recordsLen(batch)
	if err := writeSegment(s.f, batch); err != nil {
		s.err = fmt.Errorf("sketchio: spill append failed, further appends disabled: %w", err)
		return s.err
	}
	if err := s.f.Sync(); err != nil {
		s.err = fmt.Errorf("sketchio: spill sync failed, further appends disabled: %w", err)
		return s.err
	}
	s.segs = append(s.segs, spillSeg{off: s.size, first: s.numSets, count: len(batch), payload: payload})
	s.size += segHeaderLen + int64(payload) + 4
	s.numSets += len(batch)
	s.payload += int64(payload)
	s.insertCacheLocked(len(s.segs)-1, batch)
	return nil
}

// Set returns RR set i, decoding its segment from the spill file if it is not
// resident. The slice is a read-only heap copy owned by the store's cache. A
// read that fails against media verified at open time (bit rot after the
// fact, file deleted underfoot) panics — the core.RRStore contract has no
// error path for Set, mirroring slice indexing.
func (s *SpillStore) Set(i int) []graph.VertexID {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= s.numSets {
		panic(fmt.Sprintf("sketchio: spill store set index %d out of range [0, %d)", i, s.numSets))
	}
	si := s.segForLocked(i)
	sets, err := s.segmentSetsLocked(si, true)
	if err != nil {
		panic(fmt.Sprintf("sketchio: spill store read of set %d failed: %v", i, err))
	}
	return sets[i-s.segs[si].first]
}

// ForEach streams the sets with index in [from, to) in ascending order. Each
// non-resident segment is decoded once, in file order, without entering the
// working set — bulk scans (member-index construction, finalize) do not evict
// the build's hot tail. fn runs outside the store's lock.
func (s *SpillStore) ForEach(from, to int, fn func(i int, set []graph.VertexID) error) error {
	s.mu.Lock()
	total := s.numSets
	s.mu.Unlock()
	if from < 0 || to > total || from > to {
		return fmt.Errorf("sketchio: ForEach range [%d, %d) outside [0, %d)", from, to, total)
	}
	i := from
	for i < to {
		s.mu.Lock()
		si := s.segForLocked(i)
		seg := s.segs[si]
		sets, err := s.segmentSetsLocked(si, false)
		s.mu.Unlock()
		if err != nil {
			return err
		}
		end := seg.first + seg.count
		if end > to {
			end = to
		}
		for ; i < end; i++ {
			if err := fn(i, sets[i-seg.first]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Stats reports the store's footprint: MemBytes is the decoded working set,
// SpillBytes the durable file size.
func (s *SpillStore) Stats() core.StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return core.StoreStats{
		Sets:         s.numSets,
		PayloadBytes: s.payload,
		MemBytes:     s.cacheBytes,
		SpillBytes:   s.size,
	}
}

// Close unmaps and closes the spill file, dropping the working set. The file
// stays on disk — it is a valid checkpoint a later OpenSpillStore (or
// OpenCheckpoint) resumes from; delete it when the build's artifacts are no
// longer needed. Sets must not be read after Close.
func (s *SpillStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.unmap != nil {
		s.unmap()
		s.unmap, s.mmapData = nil, nil
	}
	s.cache, s.cacheBytes = make(map[int]*spillCacheEntry), 0
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// segForLocked returns the index of the segment holding set i.
func (s *SpillStore) segForLocked(i int) int {
	return sort.Search(len(s.segs), func(k int) bool { return s.segs[k].first+s.segs[k].count > i })
}

// segmentSetsLocked returns segment si decoded, from the working set when
// resident. cacheIt controls whether a fresh decode enters the working set
// (point reads) or stays ephemeral (bulk scans).
func (s *SpillStore) segmentSetsLocked(si int, cacheIt bool) ([][]graph.VertexID, error) {
	if e, ok := s.cache[si]; ok {
		s.tick++
		e.lastUse = s.tick
		return e.sets, nil
	}
	sets, err := s.decodeSegLocked(si)
	if err != nil {
		return nil, err
	}
	if cacheIt {
		s.insertCacheLocked(si, sets)
	}
	return sets, nil
}

// decodeSegLocked reads segment si back from the spill file, preferring the
// mapping (remapped lazily after growth) and falling back to positioned file
// reads where mmap is unavailable. The decode re-verifies the segment CRC —
// cheap next to the allocation it guards — and copies the sets onto the heap.
func (s *SpillStore) decodeSegLocked(si int) ([][]graph.VertexID, error) {
	if s.f == nil {
		return nil, fmt.Errorf("sketchio: spill store is closed")
	}
	seg := s.segs[si]
	segSize := segHeaderLen + int64(seg.payload) + 4
	s.remapLocked()
	var br *bufio.Reader
	if s.mmapData != nil && seg.off+segSize <= int64(len(s.mmapData)) {
		br = bufio.NewReader(bytes.NewReader(s.mmapData[seg.off : seg.off+segSize]))
	} else {
		br = bufio.NewReaderSize(io.NewSectionReader(s.f, seg.off, segSize), 1<<16)
	}
	sets, _, _, _, err := readSegment(br, s.meta.N, seg.first, &vertexArena{})
	return sets, err
}

// remapLocked refreshes the read mapping after the file has grown. Mapping is
// an optimization: on failure reads fall back to the section-reader path.
func (s *SpillStore) remapLocked() {
	if s.mappedSize == s.size {
		return
	}
	if s.unmap != nil {
		s.unmap()
		s.unmap, s.mmapData = nil, nil
	}
	if data, unmap, ok := mmapFile(s.f); ok {
		s.mmapData, s.unmap = data, unmap
	}
	s.mappedSize = s.size
}

// insertCacheLocked pins a decoded segment and evicts least-recently-used
// entries beyond the budget, always keeping at least the newest entry so the
// build's hot segment survives even a budget smaller than one segment.
func (s *SpillStore) insertCacheLocked(si int, sets [][]graph.VertexID) {
	var n int64
	for _, set := range sets {
		n += 24 + 4*int64(len(set))
	}
	s.tick++
	s.cache[si] = &spillCacheEntry{sets: sets, bytes: n, lastUse: s.tick}
	s.cacheBytes += n
	for s.cacheBytes > s.budget && len(s.cache) > 1 {
		victim, oldest := -1, int64(math.MaxInt64)
		for k, e := range s.cache {
			if e.lastUse < oldest {
				victim, oldest = k, e.lastUse
			}
		}
		s.cacheBytes -= s.cache[victim].bytes
		delete(s.cache, victim)
	}
}

// BuildSpill runs a disk-backed adaptive build end to end: it opens (or
// resumes) the spill file at path, reconstructs the builder from the segments
// already on disk, and runs BuildToTarget with every appended batch written
// through the store. target.MaxBatch is clamped to DefaultSpillMaxBatch so
// the in-flight batch — the only full-size RR-set buffer a spill build holds —
// stays small. memBudget has OpenSpillStore semantics (0 default, negative
// unbounded).
//
// On every return after the store opened successfully — success, cancellation,
// append failure — the store is returned alongside the builder and the caller
// owns closing it; the oracle a later builder.Oracle() yields reads through
// the store, which must therefore stay open until the sketch is finalized
// (e.g. WriteFile) and queries are done. The spill file itself survives Close
// for resume; remove it once the final sketch is written.
func BuildSpill(ctx context.Context, path string, ig *graph.InfluenceGraph, model diffusion.Model, workers int, seed uint64, memBudget int64, target core.BuildTarget) (*core.SketchBuilder, *SpillStore, core.BuildResult, error) {
	if ig == nil || ig.NumVertices() == 0 {
		return nil, nil, core.BuildResult{}, core.ErrEmptyGraph
	}
	store, err := OpenSpillStore(path, checkpointMetaFor(ig, model, seed), memBudget)
	if err != nil {
		return nil, nil, core.BuildResult{}, err
	}
	b, err := core.NewSketchBuilderFromStore(ig, model, workers, seed, store)
	if err != nil {
		_ = store.Close()
		return nil, nil, core.BuildResult{}, err
	}
	if target.MaxBatch < 1 || target.MaxBatch > DefaultSpillMaxBatch {
		target.MaxBatch = DefaultSpillMaxBatch
	}
	res, err := b.BuildToTarget(ctx, target)
	return b, store, res, err
}
