//go:build !unix

package sketchio

import "os"

// mmapFile is unavailable on this platform; ReadFile streams instead.
func mmapFile(_ *os.File) (data []byte, unmap func(), ok bool) {
	return nil, nil, false
}
