//go:build unix

package sketchio

import (
	"os"
	"syscall"
)

// mmapFile maps f read-only into memory. It returns ok=false (caller falls
// back to streaming reads) for empty or oversized files and on any mmap
// failure; mapping is an optimization, never a requirement.
func mmapFile(f *os.File) (data []byte, unmap func(), ok bool) {
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, false
	}
	size := fi.Size()
	if size <= 0 || size > 1<<46 || int64(int(size)) != size {
		return nil, nil, false
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, false
	}
	return data, func() { _ = syscall.Munmap(data) }, true
}
