// Package sketchio serializes the RR-set influence oracle (core.Oracle) to a
// versioned binary "sketch" file and loads it back, enabling the
// build-once / serve-many pipeline: an expensive sketch build (imsketch)
// runs offline, and any number of query servers (imserve) load the resulting
// artifact and answer influence queries without touching the graph again.
//
// # Format (version 1, little endian)
//
//	offset  size  field
//	0       4     magic "IMSK"
//	4       2     format version (1)
//	6       1     diffusion model (0 = IC, 1 = LT)
//	7       1     flags (bit 0 = sharded; all other bits reserved as 0)
//	8       8     build seed
//	16      8     number of vertices n
//	24      8     number of RR sets R
//	32      8     payload length in bytes
//	40      ...   R records: uint32 count, then count × int32 vertex ids
//	40+len  4     CRC-32C (Castagnoli) of everything before it
//
// When the sharded flag is set a 24-byte lineage extension sits between the
// header and the payload (shifting the payload and checksum down by 24):
//
//	40      8     shard index (0-based)
//	48      8     shard count
//	56      8     total RR sets across the whole fleet
//
// SplitSketch writes the extension so a shard is a complete, valid sketch on
// its own and still names the fleet it belongs to — a coordinator assembling
// shards can reject duplicates, gaps and mixed splits instead of silently
// merging wrong counts. Unsharded sketches carry a zero flags byte and are
// byte-identical to files written before the extension existed.
//
// Every record and the payload as a whole are length-prefixed, so a reader
// can stream the file without buffering it and reject truncation early; the
// trailing checksum catches bit rot. Decoding is strict: unknown versions,
// unknown flag bits, out-of-range vertex ids, impossible lengths and
// trailing garbage are all errors, never panics — sketches may come from
// untrusted storage.
package sketchio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"imdist/internal/core"
	"imdist/internal/diffusion"
	"imdist/internal/graph"
)

// Version is the current sketch format version.
const Version = 1

const (
	headerLen = 40
	magic     = "IMSK"
	// flagSharded marks a sketch produced by SplitSketch: a lineageLen-byte
	// shard lineage extension follows the header.
	flagSharded = 0x1
	lineageLen  = 24
	// maxRecordBuf caps the per-record read buffer a hostile count field can
	// request before validation against n kicks in.
	maxRecordBuf = 1 << 26 // 64 MiB, i.e. 2^24 vertices per RR set
)

// Decode errors. Errors wrapping ErrCorrupt carry a position/detail message.
var (
	ErrBadMagic    = errors.New("sketchio: not a sketch file (bad magic)")
	ErrVersion     = errors.New("sketchio: unsupported sketch version")
	ErrCorrupt     = errors.New("sketchio: corrupt sketch")
	ErrChecksum    = errors.New("sketchio: checksum mismatch")
	errNilOracle   = errors.New("sketchio: nil oracle")
	castagnoliTab  = crc32.MakeTable(crc32.Castagnoli)
	errShortSketch = fmt.Errorf("%w: truncated file", ErrCorrupt)
)

// EncodedSize returns the exact on-disk size in bytes of o's sketch.
func EncodedSize(o *core.Oracle) int64 {
	size := int64(headerLen) + o.PayloadBytes() + 4
	if o.ShardLineage().Sharded() {
		size += lineageLen
	}
	return size
}

// Encode writes o as a sketch to w.
func Encode(w io.Writer, o *core.Oracle) error {
	if o == nil {
		return errNilOracle
	}
	crc := crc32.New(castagnoliTab)
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<16)

	// The oracle pinned its payload size while building the member index, so
	// no sizing pass over the (possibly disk-backed) sets is needed here; the
	// single writeRecords pass below streams them segment by segment.
	payload := uint64(o.PayloadBytes())
	hdr := make([]byte, headerLen, headerLen+lineageLen)
	copy(hdr, magic)
	binary.LittleEndian.PutUint16(hdr[4:], Version)
	hdr[6] = byte(o.Model())
	binary.LittleEndian.PutUint64(hdr[8:], o.BuildSeed())
	binary.LittleEndian.PutUint64(hdr[16:], uint64(o.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(o.NumSets()))
	binary.LittleEndian.PutUint64(hdr[32:], payload)
	if l := o.ShardLineage(); l.Sharded() {
		hdr[7] = flagSharded
		hdr = hdr[:headerLen+lineageLen]
		binary.LittleEndian.PutUint64(hdr[headerLen:], uint64(l.Index))
		binary.LittleEndian.PutUint64(hdr[headerLen+8:], uint64(l.Count))
		binary.LittleEndian.PutUint64(hdr[headerLen+16:], uint64(l.TotalSets))
	}
	if _, err := bw.Write(hdr); err != nil {
		return err
	}

	if err := writeRecords(bw, o.NumSets(), o.RRSet); err != nil {
		return err
	}
	// The checksum covers header + payload; flush so crc has seen them all.
	if err := bw.Flush(); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// writeRecords writes count length-prefixed RR-set records, obtained from
// get, to w. It is the payload encoder shared by the v1 sketch format and the
// v2 checkpoint segments.
func writeRecords(w io.Writer, count int, get func(int) []graph.VertexID) error {
	var scratch []byte
	for i := 0; i < count; i++ {
		set := get(i)
		need := 4 + 4*len(set)
		if cap(scratch) < need {
			scratch = make([]byte, need)
		}
		buf := scratch[:need]
		binary.LittleEndian.PutUint32(buf, uint32(len(set)))
		for j, v := range set {
			binary.LittleEndian.PutUint32(buf[4+4*j:], uint32(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// recordsLen returns the encoded payload size of the given RR sets.
func recordsLen(sets [][]graph.VertexID) uint64 {
	var payload uint64
	for _, set := range sets {
		payload += 4 + 4*uint64(len(set))
	}
	return payload
}

// WriteFile atomically writes o's sketch to path: it encodes into a
// temporary file in the same directory and renames it into place, so readers
// never observe a half-written sketch.
func WriteFile(path string, o *core.Oracle) error {
	dir, base := splitPath(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := Encode(tmp, o); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func splitPath(path string) (dir, base string) {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			return path[:i+1], path[i+1:]
		}
	}
	return ".", path
}

// header is the decoded fixed-size sketch header.
type header struct {
	model      diffusion.Model
	seed       uint64
	n          int
	numSets    int
	payloadLen uint64
	// sharded reports the flagSharded bit: a lineageLen-byte extension
	// follows this header before the payload.
	sharded bool
}

func parseHeader(hdr []byte) (header, error) {
	var h header
	if string(hdr[:4]) != magic {
		return h, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != Version {
		return h, fmt.Errorf("%w: got %d, support %d", ErrVersion, v, Version)
	}
	switch diffusion.Model(hdr[6]) {
	case diffusion.IC, diffusion.LT:
		h.model = diffusion.Model(hdr[6])
	default:
		return h, fmt.Errorf("%w: unknown diffusion model %d", ErrCorrupt, hdr[6])
	}
	if hdr[7]&^flagSharded != 0 {
		return h, fmt.Errorf("%w: unknown flag bits %#02x", ErrCorrupt, hdr[7]&^byte(flagSharded))
	}
	h.sharded = hdr[7]&flagSharded != 0
	h.seed = binary.LittleEndian.Uint64(hdr[8:])
	n := binary.LittleEndian.Uint64(hdr[16:])
	numSets := binary.LittleEndian.Uint64(hdr[24:])
	h.payloadLen = binary.LittleEndian.Uint64(hdr[32:])
	if n < 1 || n > math.MaxInt32 {
		return h, fmt.Errorf("%w: vertex count %d outside [1, 2^31)", ErrCorrupt, n)
	}
	if numSets < 1 || numSets > math.MaxInt32 {
		return h, fmt.Errorf("%w: RR-set count %d outside [1, 2^31)", ErrCorrupt, numSets)
	}
	// Each record is at least a 4-byte count; a payload shorter than that is
	// impossible, as is one above 2^56 bytes.
	if h.payloadLen < 4*numSets || h.payloadLen > 1<<56 {
		return h, fmt.Errorf("%w: payload length %d impossible for %d RR sets", ErrCorrupt, h.payloadLen, numSets)
	}
	h.n = int(n)
	h.numSets = int(numSets)
	return h, nil
}

// parseLineage decodes the lineageLen-byte shard lineage extension of a
// sharded sketch. Every field is bounds-checked here against the same
// [1, 2^31) envelope as the header counts; cross-field consistency with the
// shard's own RR-set count is enforced by core.Oracle.SetShardLineage once
// the payload has decoded.
func parseLineage(ext []byte) (core.ShardLineage, error) {
	idx := binary.LittleEndian.Uint64(ext)
	count := binary.LittleEndian.Uint64(ext[8:])
	total := binary.LittleEndian.Uint64(ext[16:])
	if count < 1 || count > math.MaxInt32 {
		return core.ShardLineage{}, fmt.Errorf("%w: shard count %d outside [1, 2^31)", ErrCorrupt, count)
	}
	if idx >= count {
		return core.ShardLineage{}, fmt.Errorf("%w: shard index %d outside [0, %d)", ErrCorrupt, idx, count)
	}
	if total < 1 || total > math.MaxInt32 {
		return core.ShardLineage{}, fmt.Errorf("%w: fleet RR-set count %d outside [1, 2^31)", ErrCorrupt, total)
	}
	return core.ShardLineage{Index: int(idx), Count: int(count), TotalSets: int(total)}, nil
}

// applyLineage installs a decoded shard lineage on the reassembled oracle,
// mapping a cross-field mismatch (more local sets than the fleet total, more
// shards than sets) to a corruption error.
func applyLineage(o *core.Oracle, l core.ShardLineage) (*core.Oracle, error) {
	if err := o.SetShardLineage(l); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return o, nil
}

// Decode reads a sketch from r and reassembles the oracle. It streams: the
// payload is consumed record by record with strict bounds checks, and the
// trailing CRC-32C is verified against the bytes actually read.
func Decode(r io.Reader) (*core.Oracle, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	crc := crc32.New(castagnoliTab)
	tee := io.TeeReader(br, crc)

	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(tee, hdr); err != nil {
		return nil, readErr(err)
	}
	h, err := parseHeader(hdr)
	if err != nil {
		return nil, err
	}
	var lineage core.ShardLineage
	if h.sharded {
		ext := make([]byte, lineageLen)
		if _, err := io.ReadFull(tee, ext); err != nil {
			return nil, readErr(err)
		}
		if lineage, err = parseLineage(ext); err != nil {
			return nil, err
		}
	}

	rrSets, err := readRecords(tee, h.n, h.numSets, h.payloadLen, &vertexArena{})
	if err != nil {
		return nil, err
	}

	// The stored checksum itself is read past the tee so it does not feed
	// back into the digest.
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return nil, readErr(err)
	}
	if binary.LittleEndian.Uint32(tail[:]) != crc.Sum32() {
		return nil, ErrChecksum
	}
	o, err := core.NewOracleFromRRSets(h.n, h.model, h.seed, rrSets)
	if err != nil || !h.sharded {
		return o, err
	}
	return applyLineage(o, lineage)
}

// readRecords decodes numSets length-prefixed RR-set records spanning exactly
// payloadLen bytes of r, validating every vertex id against [0, n). It is the
// payload decoder shared by the v1 sketch format and the v2 checkpoint
// segments. The sets' backing storage is carved from arena (chunked, one
// large allocation per ~4 MiB of payload instead of one per record); with a
// nil arena the records are validated and discarded instead of materialized
// (returning nil) — Inspect verifies multi-GB files in O(record) memory this
// way.
func readRecords(tee io.Reader, n, numSets int, payloadLen uint64, arena *vertexArena) ([][]graph.VertexID, error) {
	var rrSets [][]graph.VertexID
	if arena != nil {
		rrSets = make([][]graph.VertexID, numSets)
	}
	remaining := payloadLen
	var lenBuf [4]byte
	var recBuf []byte
	for i := 0; i < numSets; i++ {
		if remaining < 4 {
			return nil, fmt.Errorf("%w: payload exhausted at RR set %d", ErrCorrupt, i)
		}
		if _, err := io.ReadFull(tee, lenBuf[:]); err != nil {
			return nil, readErr(err)
		}
		remaining -= 4
		count := binary.LittleEndian.Uint32(lenBuf[:])
		// An RR set holds distinct vertices, so its size cannot exceed n —
		// this also bounds the buffer a hostile count can request.
		if uint64(count) > uint64(n) {
			return nil, fmt.Errorf("%w: RR set %d claims %d members on a %d-vertex graph", ErrCorrupt, i, count, n)
		}
		need := 4 * uint64(count)
		if need > remaining {
			return nil, fmt.Errorf("%w: RR set %d overruns payload", ErrCorrupt, i)
		}
		if need > maxRecordBuf {
			return nil, fmt.Errorf("%w: RR set %d record of %d bytes exceeds limit", ErrCorrupt, i, need)
		}
		if uint64(cap(recBuf)) < need {
			recBuf = make([]byte, need)
		}
		buf := recBuf[:need]
		if _, err := io.ReadFull(tee, buf); err != nil {
			return nil, readErr(err)
		}
		remaining -= need
		if arena == nil {
			for j := 0; j < int(count); j++ {
				if v := binary.LittleEndian.Uint32(buf[4*j:]); uint64(v) >= uint64(n) {
					return nil, fmt.Errorf("%w: RR set %d contains vertex %d outside [0, %d)", ErrCorrupt, i, v, n)
				}
			}
			continue
		}
		set := arena.alloc(int(count))
		for j := range set {
			v := binary.LittleEndian.Uint32(buf[4*j:])
			if uint64(v) >= uint64(n) {
				return nil, fmt.Errorf("%w: RR set %d contains vertex %d outside [0, %d)", ErrCorrupt, i, v, n)
			}
			set[j] = graph.VertexID(v)
		}
		rrSets[i] = set
	}
	if remaining != 0 {
		return nil, fmt.Errorf("%w: %d unread payload bytes after last RR set", ErrCorrupt, remaining)
	}
	return rrSets, nil
}

func readErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return errShortSketch
	}
	return err
}

// DecodeBytes decodes a sketch held entirely in memory (for example a
// memory-mapped file).
func DecodeBytes(data []byte) (*core.Oracle, error) {
	return Decode(bytes.NewReader(data))
}

// ReadFile loads a sketch from path. On platforms with mmap support the file
// is memory-mapped while decoding, so the page cache is shared across
// processes loading the same sketch and no intermediate copy of the file is
// held; elsewhere it falls back to streaming from the file.
func ReadFile(path string) (*core.Oracle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if data, unmap, ok := mmapFile(f); ok {
		defer unmap()
		return DecodeBytes(data)
	}
	return Decode(f)
}
