package sketchio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"unsafe"

	"imdist/internal/core"
	"imdist/internal/graph"
)

// Compile-time assertion that graph.VertexID is exactly 4 bytes: the
// zero-copy decode reinterprets the mapped payload as []graph.VertexID, which
// is only sound while the on-disk record layout (4-byte little-endian ids)
// matches the in-memory representation.
var _ = [1]struct{}{}[unsafe.Sizeof(graph.VertexID(0))-4]

// hostLittleEndian reports whether this machine stores integers in the
// sketch file's byte order, the precondition for aliasing the mapping.
var hostLittleEndian = func() bool {
	var buf [2]byte
	binary.NativeEndian.PutUint16(buf[:], 1)
	return buf[0] == 1
}()

// MappedSketch is a loaded sketch whose backing storage has an explicit
// lifetime. When the platform supports memory mapping and the host is
// little-endian, the oracle's RR sets alias the mapped file directly — no
// per-record copies, and the page cache is shared between every process
// serving the same sketch — which means the mapping must outlive every query
// that walks an RR set.
//
// Lifetime is managed by reference counting: callers bracket each query with
// Acquire/Release, and Close drops the owner reference. The munmap is
// deferred until both the owner and every in-flight query have released, so
// a hot reload can swap a new sketch in immediately while queries drain on
// the old one (the copy-on-swap semantics of internal/server's registry).
//
// When mapping or aliasing is unavailable the sketch decodes onto the heap
// and the same API degrades to no-ops, so callers never need to care which
// mode they got.
type MappedSketch struct {
	oracle *core.Oracle

	mu     sync.Mutex
	refs   int
	closed bool
	unmap  func()

	zeroCopy bool
}

// OpenMapped loads the sketch at path, memory-mapping it and aliasing the
// oracle's RR sets into the mapping when the platform and byte order allow;
// otherwise it falls back to a heap-decoded oracle with the same refcounting
// API. The caller owns one reference and must call Close when done; queries
// issued concurrently with Close must hold their own Acquire/Release pair.
//
// Because the mapping is shared with the file, a mapped sketch file must
// only ever be replaced atomically (write to a temp file, then rename into
// place — what WriteFile and imsketch always do), never rewritten in place:
// validation runs once at open time, so in-place writes would corrupt the
// records under live queries.
func OpenMapped(path string) (*MappedSketch, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, unmap, ok := mmapFile(f)
	if !ok {
		oracle, err := Decode(f)
		if err != nil {
			return nil, err
		}
		return &MappedSketch{oracle: oracle}, nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&data[0]))%4 == 0 {
		oracle, err := decodeAliased(data)
		if err != nil {
			unmap()
			return nil, err
		}
		return &MappedSketch{oracle: oracle, unmap: unmap, zeroCopy: true}, nil
	}
	// Big-endian or misaligned mapping: decode by copying and release the
	// mapping immediately — the oracle owns heap memory.
	oracle, err := DecodeBytes(data)
	unmap()
	if err != nil {
		return nil, err
	}
	return &MappedSketch{oracle: oracle}, nil
}

// Oracle returns the loaded oracle. When ZeroCopy reports true its RR sets
// alias the mapping, so every use must sit inside an Acquire/Release pair or
// complete before Close.
func (m *MappedSketch) Oracle() *core.Oracle { return m.oracle }

// ZeroCopy reports whether the oracle's RR sets alias the live mapping
// (false for heap-decoded fallbacks, whose lifetime is the garbage
// collector's problem).
func (m *MappedSketch) ZeroCopy() bool { return m.zeroCopy }

// Acquire takes a query reference, preventing the mapping from being
// unmapped until the matching Release. It returns false once Close has been
// called; callers must then treat the sketch as gone.
func (m *MappedSketch) Acquire() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.refs++
	return true
}

// Release drops a query reference taken by Acquire. The last release after
// Close unmaps the file.
func (m *MappedSketch) Release() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.refs--; m.refs < 0 {
		panic("sketchio: MappedSketch.Release without Acquire")
	}
	m.maybeUnmapLocked()
}

// Close drops the owner reference. If queries are still in flight the unmap
// is deferred to the last Release; new Acquires fail immediately.
func (m *MappedSketch) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.maybeUnmapLocked()
}

func (m *MappedSketch) maybeUnmapLocked() {
	if m.closed && m.refs == 0 && m.unmap != nil {
		m.unmap()
		m.unmap = nil
	}
}

// unmapped reports whether the mapping has been released (test hook; always
// false for heap-decoded sketches, which never had one).
func (m *MappedSketch) unmapped() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.zeroCopy && m.unmap == nil
}

// decodeAliased validates a complete in-memory sketch image and builds an
// oracle whose RR sets are views into data's payload rather than copies.
// Every check of the streaming decoder still runs — checksum first, then
// header sanity, then per-record bounds and per-vertex range checks — the
// only difference is that the validated records are not copied out. Unlike
// Decode, which tolerates stream framing after the checksum, the image must
// contain exactly one sketch: trailing bytes are corruption.
func decodeAliased(data []byte) (*core.Oracle, error) {
	if len(data) < headerLen+4 {
		return nil, errShortSketch
	}
	body := data[:len(data)-4]
	if binary.LittleEndian.Uint32(data[len(data)-4:]) != crc32.Checksum(body, castagnoliTab) {
		return nil, ErrChecksum
	}
	h, err := parseHeader(body[:headerLen])
	if err != nil {
		return nil, err
	}
	var lineage core.ShardLineage
	payloadOff := headerLen
	if h.sharded {
		if len(body) < headerLen+lineageLen {
			return nil, errShortSketch
		}
		if lineage, err = parseLineage(body[headerLen : headerLen+lineageLen]); err != nil {
			return nil, err
		}
		payloadOff += lineageLen
	}
	payload := body[payloadOff:]
	if h.payloadLen != uint64(len(payload)) {
		return nil, fmt.Errorf("%w: header declares %d payload bytes, file carries %d", ErrCorrupt, h.payloadLen, len(payload))
	}
	rrSets := make([][]graph.VertexID, h.numSets)
	off := 0
	for i := 0; i < h.numSets; i++ {
		if len(payload)-off < 4 {
			return nil, fmt.Errorf("%w: payload exhausted at RR set %d", ErrCorrupt, i)
		}
		count := int(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
		if count > h.n {
			return nil, fmt.Errorf("%w: RR set %d claims %d members on a %d-vertex graph", ErrCorrupt, i, count, h.n)
		}
		if len(payload)-off < 4*count {
			return nil, fmt.Errorf("%w: RR set %d overruns payload", ErrCorrupt, i)
		}
		if count > 0 {
			set := unsafe.Slice((*graph.VertexID)(unsafe.Pointer(&payload[off])), count)
			for _, v := range set {
				if uint32(v) >= uint32(h.n) {
					return nil, fmt.Errorf("%w: RR set %d contains vertex %d outside [0, %d)", ErrCorrupt, i, v, h.n)
				}
			}
			rrSets[i] = set
		}
		off += 4 * count
	}
	if off != len(payload) {
		return nil, fmt.Errorf("%w: %d unread payload bytes after last RR set", ErrCorrupt, len(payload)-off)
	}
	o, err := core.NewOracleFromRRSets(h.n, h.model, h.seed, rrSets)
	if err != nil || !h.sharded {
		return o, err
	}
	return applyLineage(o, lineage)
}
