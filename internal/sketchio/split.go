package sketchio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"imdist/internal/core"
)

// Split errors.
var (
	// ErrAlreadySharded rejects splitting a sketch that is itself a shard:
	// re-splitting would produce lineage naming a fleet that never existed.
	ErrAlreadySharded = errors.New("sketchio: sketch is already a shard; split the original instead")
	// ErrTooManyShards rejects a split finer than the sketch's block
	// structure can honor.
	ErrTooManyShards = errors.New("sketchio: more shards than RR-set blocks")
)

// SplitSketch partitions the v1 sketch at inPath into shards standalone
// sketch files, returning their paths (outPrefix.shard<i>-of-<shards>). The
// RR-set index space is cut along the batch engine's DefaultBatchShardSize
// block boundaries — the unit the packed kernel and the batch grid already
// use — with the blocks dealt out contiguously and as evenly as possible, so
// every shard server keeps the aligned fast paths of a locally-built sketch.
//
// Each output is a complete, independently loadable sketch over the same
// graph (same n, model and build seed) carrying shard lineage
// (index/count/fleet-total) in its header, so a coordinator can verify fleet
// assembly and reject duplicates, gaps or mixed splits. Because per-shard
// coverage counts are exact integers, summing them over the shards and
// dividing once by the fleet total reproduces the unsplit sketch's answers
// byte for byte.
//
// The input is fully validated (structure, vertex ranges and CRC-32C) before
// any output is written, outputs are written atomically (temp file + rename),
// and record bytes are copied verbatim — a split never re-encodes the sets.
func SplitSketch(inPath, outPrefix string, shards int) ([]string, error) {
	return splitSketch(inPath, outPrefix, shards, core.DefaultBatchShardSize)
}

// splitSketch is SplitSketch with an explicit block size, so tests can
// exercise multi-shard splits on small RR pools.
func splitSketch(inPath, outPrefix string, shards, blockSize int) ([]string, error) {
	if shards < 1 {
		return nil, fmt.Errorf("sketchio: shard count %d < 1", shards)
	}
	if blockSize < 1 {
		blockSize = core.DefaultBatchShardSize
	}
	f, err := os.Open(inPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	h, blockOff, err := scanBlocks(f, blockSize)
	if err != nil {
		return nil, err
	}
	numBlocks := len(blockOff) - 1
	if shards > numBlocks {
		return nil, fmt.Errorf("%w: %d RR sets form %d blocks of %d, cannot split into %d",
			ErrTooManyShards, h.numSets, numBlocks, blockSize, shards)
	}

	paths := make([]string, shards)
	for i := 0; i < shards; i++ {
		loBlock := i * numBlocks / shards
		hiBlock := (i + 1) * numBlocks / shards
		setLo := loBlock * blockSize
		setHi := hiBlock * blockSize
		if setHi > h.numSets {
			setHi = h.numSets
		}
		lineage := core.ShardLineage{Index: i, Count: shards, TotalSets: h.numSets}
		path := fmt.Sprintf("%s.shard%d-of-%d", outPrefix, i, shards)
		if err := writeShard(f, h, path, setHi-setLo, blockOff[loBlock], blockOff[hiBlock], lineage); err != nil {
			// Best-effort cleanup of shards already renamed into place: a
			// partial fleet must not look complete.
			for _, p := range paths[:i] {
				_ = os.Remove(p)
			}
			return nil, err
		}
		paths[i] = path
	}
	return paths, nil
}

// scanBlocks validates the whole sketch at f — header, record structure,
// vertex ranges and trailing CRC-32C — and returns the payload byte offset of
// every blockSize-record block boundary (blockOff[b] is where block b's first
// record starts, blockOff[numBlocks] the payload end). It streams in O(record)
// memory; nothing is materialized.
func scanBlocks(f *os.File, blockSize int) (header, []uint64, error) {
	var h header
	br := bufio.NewReaderSize(f, 1<<16)
	crc := crc32.New(castagnoliTab)
	tee := io.TeeReader(br, crc)

	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(tee, hdr); err != nil {
		return h, nil, readErr(err)
	}
	h, err := parseHeader(hdr)
	if err != nil {
		return h, nil, err
	}
	if h.sharded {
		return h, nil, ErrAlreadySharded
	}

	numBlocks := (h.numSets + blockSize - 1) / blockSize
	blockOff := make([]uint64, numBlocks+1)
	remaining := h.payloadLen
	var off uint64
	var lenBuf [4]byte
	var recBuf []byte
	for i := 0; i < h.numSets; i++ {
		if i%blockSize == 0 {
			blockOff[i/blockSize] = off
		}
		if remaining < 4 {
			return h, nil, fmt.Errorf("%w: payload exhausted at RR set %d", ErrCorrupt, i)
		}
		if _, err := io.ReadFull(tee, lenBuf[:]); err != nil {
			return h, nil, readErr(err)
		}
		remaining -= 4
		count := binary.LittleEndian.Uint32(lenBuf[:])
		if uint64(count) > uint64(h.n) {
			return h, nil, fmt.Errorf("%w: RR set %d claims %d members on a %d-vertex graph", ErrCorrupt, i, count, h.n)
		}
		need := 4 * uint64(count)
		if need > remaining {
			return h, nil, fmt.Errorf("%w: RR set %d overruns payload", ErrCorrupt, i)
		}
		if need > maxRecordBuf {
			return h, nil, fmt.Errorf("%w: RR set %d record of %d bytes exceeds limit", ErrCorrupt, i, need)
		}
		if uint64(cap(recBuf)) < need {
			recBuf = make([]byte, need)
		}
		buf := recBuf[:need]
		if _, err := io.ReadFull(tee, buf); err != nil {
			return h, nil, readErr(err)
		}
		remaining -= need
		for j := 0; j < int(count); j++ {
			if v := binary.LittleEndian.Uint32(buf[4*j:]); uint64(v) >= uint64(h.n) {
				return h, nil, fmt.Errorf("%w: RR set %d contains vertex %d outside [0, %d)", ErrCorrupt, i, v, h.n)
			}
		}
		off += 4 + need
	}
	if remaining != 0 {
		return h, nil, fmt.Errorf("%w: %d unread payload bytes after last RR set", ErrCorrupt, remaining)
	}
	blockOff[numBlocks] = off
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return h, nil, readErr(err)
	}
	if binary.LittleEndian.Uint32(tail[:]) != crc.Sum32() {
		return h, nil, ErrChecksum
	}
	return h, blockOff, nil
}

// writeShard atomically writes one shard sketch: a fresh sharded header and
// lineage extension, the input's payload bytes [payLo, payHi) copied verbatim
// from in, and a new trailing CRC-32C over what this file actually contains.
func writeShard(in *os.File, h header, path string, numSets int, payLo, payHi uint64, lineage core.ShardLineage) error {
	dir, base := splitPath(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())

	crc := crc32.New(castagnoliTab)
	bw := bufio.NewWriterSize(io.MultiWriter(tmp, crc), 1<<16)

	hdr := make([]byte, headerLen+lineageLen)
	copy(hdr, magic)
	binary.LittleEndian.PutUint16(hdr[4:], Version)
	hdr[6] = byte(h.model)
	hdr[7] = flagSharded
	binary.LittleEndian.PutUint64(hdr[8:], h.seed)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(h.n))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(numSets))
	binary.LittleEndian.PutUint64(hdr[32:], payHi-payLo)
	binary.LittleEndian.PutUint64(hdr[headerLen:], uint64(lineage.Index))
	binary.LittleEndian.PutUint64(hdr[headerLen+8:], uint64(lineage.Count))
	binary.LittleEndian.PutUint64(hdr[headerLen+16:], uint64(lineage.TotalSets))
	if _, err := bw.Write(hdr); err != nil {
		_ = tmp.Close()
		return err
	}
	// The section reader gives this copy its own read offset into the
	// validated input, independent of the scan's buffered reader. The byte
	// range was measured record by record in scanBlocks, so the copy length
	// is already bounds-checked against the payload.
	sr := io.NewSectionReader(in, headerLen+int64(payLo), int64(payHi-payLo))
	if _, err := io.Copy(bw, sr); err != nil {
		_ = tmp.Close()
		return readErr(err)
	}
	if err := bw.Flush(); err != nil {
		_ = tmp.Close()
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	if _, err := tmp.Write(tail[:]); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
