package sketchio

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"imdist/internal/core"
	"imdist/internal/diffusion"
	"imdist/internal/graph"
)

// memoryBuiltSketch builds total sets in memory at the given worker count and
// returns the finalized v1 sketch bytes plus the builder.
func memoryBuiltSketch(t testing.TB, workers, total int, seed uint64) ([]byte, *core.SketchBuilder) {
	t.Helper()
	b := mustBuilder(t, karateGraph(t), workers, seed)
	appendSets(t, b, total)
	o, err := b.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	return encodeOracle(t, o), b
}

// spillBuiltSketch runs a fixed-size spill build and returns the finalized v1
// sketch bytes plus the store (closed via t.Cleanup).
func spillBuiltSketch(t testing.TB, path string, workers, total int, seed uint64, budget int64, maxBatch int) ([]byte, *SpillStore) {
	t.Helper()
	b, store, res, err := BuildSpill(context.Background(), path, karateGraph(t), diffusion.IC, workers, seed, budget,
		core.BuildTarget{MaxSets: total, MaxBatch: maxBatch})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	if res.Sets != total {
		t.Fatalf("spill build stopped at %d sets, want %d", res.Sets, total)
	}
	o, err := b.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	return encodeOracle(t, o), store
}

// TestSpillMatchesMemoryAcrossBudgetsAndWorkers is the equivalence matrix of
// the satellite task: budgets {tiny, unbounded} × workers {1, 4} must all
// produce a v1 sketch byte-identical (same SHA-256) to the in-memory build,
// with identical ErrorBound values.
func TestSpillMatchesMemoryAcrossBudgetsAndWorkers(t *testing.T) {
	const total, seed = 3000, 29
	memSketch, memBuilder := memoryBuiltSketch(t, 2, total, seed)
	wantSum := sha256.Sum256(memSketch)
	wantBound := memBuilder.ErrorBound(10, 0.01)

	for _, workers := range []int{1, 4} {
		for _, budget := range []int64{4096, -1} {
			t.Run(fmt.Sprintf("workers=%d/budget=%d", workers, budget), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "build.spill")
				// A small batch cap forces many segments, so the tiny budget
				// actually cycles the working set.
				sketch, store := spillBuiltSketch(t, path, workers, total, seed, budget, 256)
				if got := sha256.Sum256(sketch); got != wantSum {
					t.Error("spill sketch not byte-identical to in-memory sketch")
				}
				st := store.Stats()
				if st.SpillBytes <= 0 || st.Sets != total {
					t.Errorf("spill stats = %+v", st)
				}
				sb, err := core.NewSketchBuilderFromStore(karateGraph(t), diffusion.IC, workers, seed, store)
				if err != nil {
					t.Fatal(err)
				}
				if got := sb.ErrorBound(10, 0.01); got != wantBound {
					t.Errorf("spill ErrorBound = %v, in-memory = %v", got, wantBound)
				}
			})
		}
	}
}

// TestSpillBuildsTenTimesBudget is the acceptance criterion: a build whose
// durable footprint exceeds 10× the memory budget still completes, keeps its
// decoded working set within budget slack, and produces a sketch with the
// same SHA-256 as the unconstrained in-memory build.
func TestSpillBuildsTenTimesBudget(t *testing.T) {
	const (
		total  = 20000
		seed   = 31
		budget = 8 << 10 // 8 KiB — tiny against ~hundreds of KiB of RR sets
	)
	memSketch, _ := memoryBuiltSketch(t, 4, total, seed)
	path := filepath.Join(t.TempDir(), "big.spill")
	sketch, store := spillBuiltSketch(t, path, 4, total, seed, budget, 512)

	st := store.Stats()
	if st.SpillBytes < 10*budget {
		t.Fatalf("spill footprint %d bytes not ≥ 10× the %d-byte budget — grow the build", st.SpillBytes, budget)
	}
	// The working set may hold one over-budget segment (the pinned newest),
	// but never the whole build.
	if st.MemBytes >= st.SpillBytes/2 {
		t.Errorf("working set %d bytes is not bounded against %d spilled", st.MemBytes, st.SpillBytes)
	}
	if sha256.Sum256(sketch) != sha256.Sum256(memSketch) {
		t.Error("10×-budget spill sketch not byte-identical to in-memory sketch")
	}

	// The file on disk doubles as a checkpoint: a plain checkpoint reader
	// must see exactly the built sets.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	meta, sets, err := ReadCheckpoint(f)
	if err != nil {
		t.Fatal(err)
	}
	if meta != store.Meta() || len(sets) != total {
		t.Errorf("spill file as checkpoint: meta=%+v sets=%d", meta, len(sets))
	}
}

// TestSpillResumeMidBuildKill cancels a spill build mid-flight, reopens the
// same file, finishes the build, and requires the final sketch to be
// byte-identical to the uninterrupted in-memory build — the crash-resume
// guarantee of using the checkpoint format as the build medium.
func TestSpillResumeMidBuildKill(t *testing.T) {
	const total, seed = 6000, 37
	memSketch, _ := memoryBuiltSketch(t, 2, total, seed)
	path := filepath.Join(t.TempDir(), "killed.spill")

	ctx, cancel := context.WithCancel(context.Background())
	target := core.BuildTarget{
		MaxSets:  total,
		MaxBatch: 500,
		Progress: func(p core.BuildProgress) error {
			if p.Sets >= 2000 {
				cancel() // simulated kill between durable segments
			}
			return nil
		},
	}
	_, store, _, err := BuildSpill(ctx, path, karateGraph(t), diffusion.IC, 2, seed, 16<<10, target)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build returned %v, want context.Canceled", err)
	}
	durable := store.NumSets()
	if durable < 2000 || durable >= total {
		t.Fatalf("killed build left %d durable sets", durable)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: same path, same identity, different worker count on purpose.
	b2, store2, res, err := BuildSpill(context.Background(), path, karateGraph(t), diffusion.IC, 4, seed, 16<<10,
		core.BuildTarget{MaxSets: total, MaxBatch: 500})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if res.Sets != total {
		t.Fatalf("resumed build stopped at %d sets", res.Sets)
	}
	o, err := b2.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeOracle(t, o), memSketch) {
		t.Error("kill+resume spill sketch not byte-identical to in-memory sketch")
	}
}

// TestOpenSpillStoreTruncatesTornTail writes garbage after the last durable
// segment (a crash mid-append) and verifies reopening drops exactly the tail.
func TestOpenSpillStoreTruncatesTornTail(t *testing.T) {
	ig := karateGraph(t)
	meta := checkpointMetaFor(ig, diffusion.IC, 41)
	path := filepath.Join(t.TempDir(), "torn.spill")
	s, err := OpenSpillStore(path, meta, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := mustBuilder(t, ig, 1, 41)
	appendSets(t, b, 300)
	if err := s.Append(setsRange(t, b, 0, 300)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	goodSize := fileSize(t, path)

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("SEGMtorn-segment-garbage")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSpillStore(path, meta, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.NumSets() != 300 {
		t.Errorf("torn-tail reopen holds %d sets, want 300", s2.NumSets())
	}
	if got := fileSize(t, path); got != goodSize {
		t.Errorf("file size after reopen = %d, want %d", got, goodSize)
	}
	// Reads of the recovered prefix round-trip.
	if !setsEqual(s2.Set(123), b.SetAt(123)) {
		t.Error("recovered set 123 differs from builder's")
	}

	wrong := meta
	wrong.Seed++
	if _, err := OpenSpillStore(path, wrong, 0); !errors.Is(err, ErrCheckpointMeta) {
		t.Errorf("mismatched meta: err = %v, want ErrCheckpointMeta", err)
	}
}

func setsEqual(a, b []graph.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSpillStoreConcurrentReadsWithAppend drives the RRStore concurrency
// contract on the disk-backed store under -race: point reads, bulk scans and
// stats race with one appender.
func TestSpillStoreConcurrentReadsWithAppend(t *testing.T) {
	ig := karateGraph(t)
	meta := checkpointMetaFor(ig, diffusion.IC, 43)
	s, err := OpenSpillStore(filepath.Join(t.TempDir(), "conc.spill"), meta, 2<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b := mustBuilder(t, ig, 2, 43)
	appendSets(t, b, 2000)
	if err := s.Append(setsRange(t, b, 0, 1000)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for from := 1000; from < 2000; from += 100 {
			if err := s.Append(setsRange(t, b, from, from+100)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			if !setsEqual(s.Set(i%1000), b.SetAt(i%1000)) {
				t.Errorf("set %d mismatch under concurrency", i%1000)
				return
			}
			_ = s.Stats()
		}
		if err := s.ForEach(0, 1000, func(i int, set []graph.VertexID) error {
			if !setsEqual(set, b.SetAt(i)) {
				return fmt.Errorf("ForEach set %d mismatch", i)
			}
			return nil
		}); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	if s.NumSets() != 2000 {
		t.Errorf("store holds %d sets, want 2000", s.NumSets())
	}
	// The cache may legitimately end holding the 1000-set segment (a late
	// read re-pins it, and the newest entry is never evicted), so the bound
	// is one pinned segment, not the byte budget itself.
	var seg0 int64
	for i := 0; i < 1000; i++ {
		seg0 += 24 + 4*int64(len(b.SetAt(i)))
	}
	if st := s.Stats(); st.MemBytes > max(2<<10, seg0) {
		t.Errorf("working set %d exceeds one pinned segment (%d) on a tiny budget", st.MemBytes, seg0)
	}
}

// TestSpillStoreEviction checks the budget actually evicts: after appending
// far more than the budget, the cache holds a strict subset, and re-reading
// an evicted segment decodes it back correctly.
func TestSpillStoreEviction(t *testing.T) {
	ig := karateGraph(t)
	meta := checkpointMetaFor(ig, diffusion.IC, 47)
	const budget = 4 << 10
	s, err := OpenSpillStore(filepath.Join(t.TempDir(), "evict.spill"), meta, budget)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b := mustBuilder(t, ig, 1, 47)
	appendSets(t, b, 3000)
	for from := 0; from < 3000; from += 250 {
		if err := s.Append(setsRange(t, b, from, from+250)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.MemBytes >= st.PayloadBytes {
		t.Fatalf("nothing evicted: mem %d vs payload %d", st.MemBytes, st.PayloadBytes)
	}
	// Oldest segments are long evicted; read them back through the file.
	for _, i := range []int{0, 1, 249, 250, 1500, 2999} {
		if !setsEqual(s.Set(i), b.SetAt(i)) {
			t.Errorf("set %d corrupted across eviction round-trip", i)
		}
	}
}
