package sketchio

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"imdist/internal/core"
	"imdist/internal/data"
	"imdist/internal/diffusion"
	"imdist/internal/graph"
	"imdist/internal/workload"
)

func karateGraph(t testing.TB) *graph.InfluenceGraph {
	t.Helper()
	ig, err := workload.Assign(data.Karate(), workload.IWC, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ig
}

func mustBuilder(t testing.TB, ig *graph.InfluenceGraph, workers int, seed uint64) *core.SketchBuilder {
	t.Helper()
	b, err := core.NewSketchBuilder(ig, diffusion.IC, workers, seed)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func appendSets(t testing.TB, b *core.SketchBuilder, m int) {
	t.Helper()
	if err := b.AppendBatch(m); err != nil {
		t.Fatal(err)
	}
}

// setsRange snapshots the builder's RR sets in [from, to) via the store-backed
// accessor (the old Sets() slice view is gone).
func setsRange(t testing.TB, b *core.SketchBuilder, from, to int) [][]graph.VertexID {
	t.Helper()
	sets, err := b.SetsRange(from, to)
	if err != nil {
		t.Fatal(err)
	}
	return sets
}

// encodeOracle renders a builder's finished sketch as v1 bytes — the
// byte-identity yardstick of the acceptance criteria.
func encodeOracle(t testing.TB, o *core.Oracle) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, o); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCheckpointRoundTrip snapshots a mid-build builder with WriteCheckpoint,
// resumes it with ResumeBuilder, finishes both, and requires the resumed
// build's on-disk sketch to be byte-identical to the uninterrupted one.
func TestCheckpointRoundTrip(t *testing.T) {
	ig := karateGraph(t)
	const seed = 21
	b := mustBuilder(t, ig, 2, seed)
	appendSets(t, b, 1500)

	var ckpt bytes.Buffer
	if err := WriteCheckpoint(&ckpt, b); err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeBuilder(bytes.NewReader(ckpt.Bytes()), ig, 4)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.NumSets() != 1500 || resumed.Seed() != seed || resumed.Model() != diffusion.IC {
		t.Fatalf("resumed builder state: sets=%d seed=%d model=%v", resumed.NumSets(), resumed.Seed(), resumed.Model())
	}
	appendSets(t, b, 2500)
	appendSets(t, resumed, 2500)

	bo, err := b.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	ro, err := resumed.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := core.NewOracleParallelSeeded(ig, diffusion.IC, 4000, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	want := encodeOracle(t, oneShot)
	if !bytes.Equal(encodeOracle(t, bo), want) {
		t.Error("uninterrupted builder sketch not byte-identical to one-shot build")
	}
	if !bytes.Equal(encodeOracle(t, ro), want) {
		t.Error("checkpoint-resumed sketch not byte-identical to one-shot build")
	}
}

func TestCheckpointEmptyBuilder(t *testing.T) {
	ig := karateGraph(t)
	b := mustBuilder(t, ig, 1, 5)
	var ckpt bytes.Buffer
	if err := WriteCheckpoint(&ckpt, b); err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeBuilder(bytes.NewReader(ckpt.Bytes()), ig, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.NumSets() != 0 {
		t.Errorf("empty checkpoint resumed with %d sets", resumed.NumSets())
	}
}

func TestResumeBuilderRejectsWrongGraph(t *testing.T) {
	ig := karateGraph(t)
	b := mustBuilder(t, ig, 1, 5)
	appendSets(t, b, 10)
	var ckpt bytes.Buffer
	if err := WriteCheckpoint(&ckpt, b); err != nil {
		t.Fatal(err)
	}
	gb := graph.NewBuilder(3)
	if err := gb.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	small, err := graph.NewInfluenceGraph(gb.Build(), func(_, _ graph.VertexID) float64 { return 0.5 })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeBuilder(bytes.NewReader(ckpt.Bytes()), small, 1); !errors.Is(err, ErrCheckpointMeta) {
		t.Errorf("wrong-graph resume: err = %v, want ErrCheckpointMeta", err)
	}
}

// TestResumeBuilderRejectsDifferentProbabilities is the regression test for
// the graph fingerprint: the same dataset under a different edge-probability
// model has identical n, model and seed, and without the fingerprint a
// resume would silently splice RR sets from two different influence graphs.
func TestResumeBuilderRejectsDifferentProbabilities(t *testing.T) {
	ig := karateGraph(t) // IWC
	b := mustBuilder(t, ig, 1, 7)
	appendSets(t, b, 50)
	var ckpt bytes.Buffer
	if err := WriteCheckpoint(&ckpt, b); err != nil {
		t.Fatal(err)
	}
	uc, err := workload.Assign(data.Karate(), workload.UC01, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeBuilder(bytes.NewReader(ckpt.Bytes()), uc, 1); !errors.Is(err, ErrCheckpointMeta) {
		t.Errorf("different-prob resume: err = %v, want ErrCheckpointMeta", err)
	}
	// The file-level open refuses the same way.
	path := filepath.Join(t.TempDir(), "p.ckpt")
	if err := os.WriteFile(path, ckpt.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenCheckpoint(path, checkpointMetaFor(uc, diffusion.IC, 7)); !errors.Is(err, ErrCheckpointMeta) {
		t.Errorf("different-prob open: err = %v, want ErrCheckpointMeta", err)
	}
}

func TestReadCheckpointRejectsDamage(t *testing.T) {
	ig := karateGraph(t)
	b := mustBuilder(t, ig, 1, 9)
	appendSets(t, b, 200)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, b); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	truncated := raw[:len(raw)-7]
	if _, _, err := ReadCheckpoint(bytes.NewReader(truncated)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated checkpoint: err = %v, want ErrCorrupt", err)
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-20] ^= 0x40
	if _, _, err := ReadCheckpoint(bytes.NewReader(flipped)); !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit-flipped checkpoint: err = %v, want checksum/corrupt", err)
	}
	v1 := encodeOracle(t, mustSmallOracle(t))
	if _, _, err := ReadCheckpoint(bytes.NewReader(v1)); !errors.Is(err, ErrVersion) {
		t.Errorf("v1 sketch as checkpoint: err = %v, want ErrVersion", err)
	}
}

func mustSmallOracle(t testing.TB) *core.Oracle {
	t.Helper()
	o, err := core.NewOracleParallelSeeded(karateGraph(t), diffusion.IC, 50, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestOpenCheckpointAppendResume exercises the on-disk append-only file:
// segments accumulate across Append calls, a reopen returns exactly the
// durable sets, and a mismatched build identity is refused.
func TestOpenCheckpointAppendResume(t *testing.T) {
	ig := karateGraph(t)
	path := filepath.Join(t.TempDir(), "build.ckpt")
	meta := checkpointMetaFor(ig, diffusion.IC, 17)

	cp, sets, err := OpenCheckpoint(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 0 || cp.NumSets() != 0 {
		t.Fatalf("fresh checkpoint holds %d sets", len(sets))
	}
	b := mustBuilder(t, ig, 2, 17)
	appendSets(t, b, 700)
	if err := cp.Append(setsRange(t, b, 0, 700)); err != nil {
		t.Fatal(err)
	}
	appendSets(t, b, 300)
	if err := cp.Append(setsRange(t, b, 700, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := cp.Append(nil); err != nil { // no-op segment
		t.Fatal(err)
	}
	if cp.NumSets() != 1000 {
		t.Fatalf("checkpointer reports %d sets, want 1000", cp.NumSets())
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	cp2, sets2, err := OpenCheckpoint(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.NumSets() != 1000 {
		t.Fatalf("reopened checkpoint reports %d sets, want 1000", cp2.NumSets())
	}
	if !reflect.DeepEqual(sets2, setsRange(t, b, 0, 1000)) {
		t.Error("reopened checkpoint sets differ from the builder's")
	}

	wrong := meta
	wrong.Seed = 18
	if _, _, err := OpenCheckpoint(path, wrong); !errors.Is(err, ErrCheckpointMeta) {
		t.Errorf("mismatched meta: err = %v, want ErrCheckpointMeta", err)
	}
}

// TestOpenCheckpointTruncatesTornTail simulates a crash mid-append: the file
// ends in half a segment. Reopening must recover the intact prefix and
// truncate the garbage so the resumed build can re-append cleanly.
func TestOpenCheckpointTruncatesTornTail(t *testing.T) {
	ig := karateGraph(t)
	path := filepath.Join(t.TempDir(), "build.ckpt")
	meta := checkpointMetaFor(ig, diffusion.IC, 23)
	cp, _, err := OpenCheckpoint(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	b := mustBuilder(t, ig, 1, 23)
	appendSets(t, b, 400)
	if err := cp.Append(setsRange(t, b, 0, 250)); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	goodSize := fileSize(t, path)

	// A torn segment: a valid header claiming more payload than follows.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeSegment(f, setsRange(t, b, 250, 400)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, goodSize+30); err != nil { // mid-segment-header+6
		t.Fatal(err)
	}

	cp2, sets, err := OpenCheckpoint(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if cp2.NumSets() != 250 || len(sets) != 250 {
		t.Fatalf("torn-tail recovery kept %d sets, want 250", cp2.NumSets())
	}
	if got := fileSize(t, path); got != goodSize {
		t.Errorf("file size after recovery = %d, want %d (torn tail truncated)", got, goodSize)
	}
	// The recovered file must accept appends again and line up with the
	// deterministic sequence.
	if err := cp2.Append(setsRange(t, b, 250, 400)); err != nil {
		t.Fatal(err)
	}
	if err := cp2.Close(); err != nil {
		t.Fatal(err)
	}
	_, sets3, err := OpenCheckpoint(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sets3, setsRange(t, b, 0, 400)) {
		t.Error("post-recovery appended checkpoint differs from builder sequence")
	}
}

func fileSize(t testing.TB, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

// TestBuildWithCheckpointResumes runs the full helper twice: the first run is
// cancelled partway, the second continues from the checkpoint to the cap, and
// the result must be byte-identical to the one-shot build of the same total.
func TestBuildWithCheckpointResumes(t *testing.T) {
	ig := karateGraph(t)
	path := filepath.Join(t.TempDir(), "karate.ckpt")
	const seed = 31
	const total = 6000

	ctx, cancel := context.WithCancel(context.Background())
	_, _, err := BuildWithCheckpoint(ctx, path, ig, diffusion.IC, 2, seed, core.BuildTarget{
		MaxSets: total,
		MinSets: 512,
		Progress: func(p core.BuildProgress) error {
			if p.Sets >= 1024 {
				cancel()
			}
			return nil
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("first run: err = %v, want context.Canceled", err)
	}
	_, durable, err := OpenCheckpoint(path, checkpointMetaFor(ig, diffusion.IC, seed))
	if err != nil {
		t.Fatal(err)
	}
	if len(durable) == 0 {
		t.Fatal("cancelled run left no durable progress")
	}

	b, res, err := BuildWithCheckpoint(context.Background(), path, ig, diffusion.IC, 4, seed, core.BuildTarget{MaxSets: total})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sets != total {
		t.Fatalf("resumed run finished at %d sets, want %d", res.Sets, total)
	}
	o, err := b.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := core.NewOracleParallelSeeded(ig, diffusion.IC, total, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeOracle(t, o), encodeOracle(t, oneShot)) {
		t.Error("checkpoint-resumed build not byte-identical to one-shot build")
	}
}

func TestInspectV1AndV2(t *testing.T) {
	dir := t.TempDir()

	// v1 sketch: header + payload + checksum, all OK.
	o := mustSmallOracle(t)
	sketchPath := filepath.Join(dir, "k.sketch")
	if err := WriteFile(sketchPath, o); err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(sketchPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Corrupt || info.Version != Version || info.NumSets != 50 {
		t.Fatalf("v1 inspect = %+v", info)
	}
	if len(info.Sections) != 3 {
		t.Fatalf("v1 sections = %d, want 3 (header, payload, checksum)", len(info.Sections))
	}
	var total int64
	for _, s := range info.Sections {
		if !s.OK {
			t.Errorf("section %s not OK: %s", s.Name, s.Detail)
		}
		total += s.Size
	}
	if total != info.Size {
		t.Errorf("section sizes sum to %d, file is %d", total, info.Size)
	}

	// v2 checkpoint with two segments.
	ig := karateGraph(t)
	ckptPath := filepath.Join(dir, "k.ckpt")
	cp, _, err := OpenCheckpoint(ckptPath, checkpointMetaFor(ig, diffusion.IC, 3))
	if err != nil {
		t.Fatal(err)
	}
	b := mustBuilder(t, ig, 1, 3)
	appendSets(t, b, 60)
	if err := cp.Append(setsRange(t, b, 0, 40)); err != nil {
		t.Fatal(err)
	}
	if err := cp.Append(setsRange(t, b, 40, b.NumSets())); err != nil {
		t.Fatal(err)
	}
	cp.Close()
	info, err = Inspect(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Corrupt || info.Version != CheckpointVersion || info.NumSets != 60 {
		t.Fatalf("v2 inspect = %+v", info)
	}
	if len(info.Sections) != 3 || info.Sections[1].Sets != 40 || info.Sections[2].Sets != 20 {
		t.Fatalf("v2 sections = %+v", info.Sections)
	}
}

func TestInspectReportsCorruption(t *testing.T) {
	dir := t.TempDir()
	o := mustSmallOracle(t)
	path := filepath.Join(dir, "bad.sketch")
	if err := WriteFile(path, o); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-30] ^= 0x01 // flip a payload bit
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Corrupt {
		t.Fatal("bit-flipped sketch not reported corrupt")
	}

	// Not a sketch at all (long enough to reach the magic check).
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, bytes.Repeat([]byte("junk"), 20), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Inspect(junk); !errors.Is(err, ErrBadMagic) {
		t.Errorf("junk file: err = %v, want ErrBadMagic", err)
	}
	// Too short to even classify.
	short := filepath.Join(dir, "short")
	if err := os.WriteFile(short, []byte("IMSK"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Inspect(short); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short file: err = %v, want ErrCorrupt", err)
	}
}
