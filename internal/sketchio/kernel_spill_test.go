package sketchio

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"imdist/internal/core"
	"imdist/internal/diffusion"
	"imdist/internal/graph"
)

// spillOracleWithKernel runs a fixed-size spill build with a tiny working-set
// budget and finalizes its oracle pinned to kernel k, so queries read RR sets
// through the disk-backed store.
func spillOracleWithKernel(t *testing.T, path string, total int, seed uint64, k core.Kernel) *core.Oracle {
	t.Helper()
	b, store, res, err := BuildSpill(context.Background(), path, karateGraph(t), diffusion.IC, 2, seed, 8<<10,
		core.BuildTarget{MaxSets: total, MaxBatch: 512})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	if res.Sets != total {
		t.Fatalf("spill build stopped at %d sets, want %d", res.Sets, total)
	}
	if err := b.SetKernel(k); err != nil {
		t.Fatal(err)
	}
	o, err := b.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestSpillOracleKernelEquivalence pins the byte-identical-answer contract on
// spill-backed oracles: the bitpack kernel must reproduce the epoch kernel's
// influence values bit for bit, its batch answers at several worker counts,
// and its greedy seed selection — even though both oracles read their RR sets
// through disk-backed stores built with an 8 KiB working set.
func TestSpillOracleKernelEquivalence(t *testing.T) {
	const total, seed = 8000, 53
	dir := t.TempDir()
	epoch := spillOracleWithKernel(t, filepath.Join(dir, "epoch.spill"), total, seed, core.KernelEpoch)
	bitpack := spillOracleWithKernel(t, filepath.Join(dir, "bitpack.spill"), total, seed, core.KernelBitpack)
	if got := epoch.KernelResolved(); got != core.KernelEpoch {
		t.Fatalf("epoch oracle resolves kernel %q", got)
	}
	if got := bitpack.KernelResolved(); got != core.KernelBitpack {
		t.Fatalf("bitpack oracle resolves kernel %q", got)
	}

	n := epoch.NumVertices()
	seedSets := make([][]graph.VertexID, 0, 40)
	for i := 0; i < 40; i++ {
		size := 1 + i%6
		set := make([]graph.VertexID, 0, size)
		for j := 0; j < size; j++ {
			set = append(set, graph.VertexID((i*7+j*11+3)%n))
		}
		seedSets = append(seedSets, set)
	}

	for i, seeds := range seedSets {
		want, err := epoch.Influence(seeds)
		if err != nil {
			t.Fatal(err)
		}
		got, err := bitpack.Influence(seeds)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("Influence(%v) [set %d]: epoch %v, bitpack %v", seeds, i, want, got)
		}
	}

	for _, workers := range []int{1, 4} {
		wantVals, wantErrs := epoch.BatchInfluence(seedSets, workers)
		gotVals, gotErrs := bitpack.BatchInfluence(seedSets, workers)
		for i := range seedSets {
			if wantErrs[i] != nil || gotErrs[i] != nil {
				t.Fatalf("batch errs[%d]: epoch %v, bitpack %v", i, wantErrs[i], gotErrs[i])
			}
			if math.Float64bits(wantVals[i]) != math.Float64bits(gotVals[i]) {
				t.Fatalf("BatchInfluence workers=%d item %d: epoch %v, bitpack %v", workers, i, wantVals[i], gotVals[i])
			}
		}
	}

	wantSeeds := epoch.GreedySeeds(7)
	gotSeeds := bitpack.GreedySeeds(7)
	if len(wantSeeds) != len(gotSeeds) {
		t.Fatalf("GreedySeeds lengths: epoch %d, bitpack %d", len(wantSeeds), len(gotSeeds))
	}
	for i := range wantSeeds {
		if wantSeeds[i] != gotSeeds[i] {
			t.Fatalf("GreedySeeds[%d]: epoch %d, bitpack %d", i, wantSeeds[i], gotSeeds[i])
		}
	}
}
