// Package heuristics provides the cheap seed-selection heuristics the paper
// surveys in Section 3.6 ("Heuristics for Quick Guesses"): plain degree,
// SingleDiscount, DegreeDiscount and PageRank. They are faster than the three
// sampling approaches but yield less influential seeds; the reproduction uses
// them as quality baselines in tests and examples.
package heuristics

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"imdist/internal/graph"
)

// ErrInvalidSeedSize reports k outside [1, n].
var ErrInvalidSeedSize = errors.New("heuristics: seed size out of range")

func validate(n, k int) error {
	if k < 1 || k > n {
		return fmt.Errorf("%w: k=%d, n=%d", ErrInvalidSeedSize, k, n)
	}
	return nil
}

// Degree returns the k vertices with the highest out-degree, breaking ties
// toward the smaller vertex id.
func Degree(g *graph.Graph, k int) ([]graph.VertexID, error) {
	if err := validate(g.NumVertices(), k); err != nil {
		return nil, err
	}
	type cand struct {
		v graph.VertexID
		d int
	}
	cands := make([]cand, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		cands[v] = cand{graph.VertexID(v), g.OutDegree(graph.VertexID(v))}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d > cands[j].d
		}
		return cands[i].v < cands[j].v
	})
	seeds := make([]graph.VertexID, k)
	for i := 0; i < k; i++ {
		seeds[i] = cands[i].v
	}
	return seeds, nil
}

// SingleDiscount selects seeds by out-degree, discounting one unit of degree
// from every out-neighbour of a chosen seed (Chen et al. 2009).
func SingleDiscount(g *graph.Graph, k int) ([]graph.VertexID, error) {
	if err := validate(g.NumVertices(), k); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	score := make([]float64, n)
	for v := 0; v < n; v++ {
		score[v] = float64(g.OutDegree(graph.VertexID(v)))
	}
	return discountLoop(g, k, score, func(chosen graph.VertexID, neighbor graph.VertexID) {
		score[neighbor]--
	}), nil
}

// DegreeDiscount selects seeds with the IC-specific degree-discount score of
// Chen et al. 2009: when a neighbour of v is selected, v's effective degree
// shrinks according to the propagation probability p. The probability used is
// the mean edge probability of the influence graph.
func DegreeDiscount(ig *graph.InfluenceGraph, k int) ([]graph.VertexID, error) {
	g := ig.Graph
	if err := validate(g.NumVertices(), k); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	p := 0.0
	if g.NumEdges() > 0 {
		p = ig.SumProbabilities() / float64(g.NumEdges())
	}
	degree := make([]float64, n)
	selectedNeighbors := make([]float64, n)
	score := make([]float64, n)
	for v := 0; v < n; v++ {
		degree[v] = float64(g.OutDegree(graph.VertexID(v)))
		score[v] = degree[v]
	}
	return discountLoop(g, k, score, func(_ graph.VertexID, neighbor graph.VertexID) {
		selectedNeighbors[neighbor]++
		t := selectedNeighbors[neighbor]
		d := degree[neighbor]
		score[neighbor] = d - 2*t - (d-t)*t*p
	}), nil
}

// discountLoop repeatedly picks the highest-score unselected vertex and then
// lets discount adjust the scores of its out-neighbours.
func discountLoop(g *graph.Graph, k int, score []float64, discount func(chosen, neighbor graph.VertexID)) []graph.VertexID {
	n := g.NumVertices()
	selected := make([]bool, n)
	seeds := make([]graph.VertexID, 0, k)
	for len(seeds) < k {
		best := -1
		for v := 0; v < n; v++ {
			if selected[v] {
				continue
			}
			if best < 0 || score[v] > score[best] {
				best = v
			}
		}
		bv := graph.VertexID(best)
		selected[best] = true
		seeds = append(seeds, bv)
		for _, w := range g.OutNeighbors(bv) {
			if !selected[w] {
				discount(bv, w)
			}
		}
	}
	return seeds
}

// PageRankOptions configures the PageRank seed heuristic.
type PageRankOptions struct {
	// Damping is the damping factor (default 0.85 when zero).
	Damping float64
	// Iterations is the number of power iterations (default 50 when zero).
	Iterations int
}

// PageRank selects the k vertices with the highest PageRank computed on the
// transposed graph (influence flows along edges, so a vertex that can reach
// many others has high reverse PageRank), breaking ties toward the smaller
// vertex id.
func PageRank(g *graph.Graph, k int, opt PageRankOptions) ([]graph.VertexID, error) {
	if err := validate(g.NumVertices(), k); err != nil {
		return nil, err
	}
	damping := opt.Damping
	if damping <= 0 || damping >= 1 {
		damping = 0.85
	}
	iterations := opt.Iterations
	if iterations <= 0 {
		iterations = 50
	}
	n := g.NumVertices()
	rank := make([]float64, n)
	next := make([]float64, n)
	for v := range rank {
		rank[v] = 1.0 / float64(n)
	}
	for it := 0; it < iterations; it++ {
		base := (1 - damping) / float64(n)
		for v := range next {
			next[v] = base
		}
		dangling := 0.0
		for v := 0; v < n; v++ {
			// Reverse PageRank: mass flows from v to its in-neighbours (the
			// vertices that can influence v push importance backwards).
			ins := g.InNeighbors(graph.VertexID(v))
			if len(ins) == 0 {
				dangling += rank[v]
				continue
			}
			share := damping * rank[v] / float64(len(ins))
			for _, u := range ins {
				next[u] += share
			}
		}
		if dangling > 0 {
			spread := damping * dangling / float64(n)
			for v := range next {
				next[v] += spread
			}
		}
		rank, next = next, rank
	}
	type cand struct {
		v graph.VertexID
		r float64
	}
	cands := make([]cand, n)
	for v := 0; v < n; v++ {
		cands[v] = cand{graph.VertexID(v), rank[v]}
	}
	sort.Slice(cands, func(i, j int) bool {
		if math.Abs(cands[i].r-cands[j].r) > 1e-15 {
			return cands[i].r > cands[j].r
		}
		return cands[i].v < cands[j].v
	})
	seeds := make([]graph.VertexID, k)
	for i := 0; i < k; i++ {
		seeds[i] = cands[i].v
	}
	return seeds, nil
}
