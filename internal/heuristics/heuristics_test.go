package heuristics

import (
	"errors"
	"testing"

	"imdist/internal/data"
	"imdist/internal/graph"
	"imdist/internal/workload"
)

// hubGraph returns a graph where vertex 0 has out-degree 5, vertex 1 has
// out-degree 3, everything else has out-degree <= 1.
func hubGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(10)
	for _, v := range []graph.VertexID{2, 3, 4, 5, 6} {
		if err := b.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []graph.VertexID{7, 8, 9} {
		if err := b.AddEdge(1, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func TestDegreePicksHubs(t *testing.T) {
	g := hubGraph(t)
	seeds, err := Degree(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if seeds[0] != 0 || seeds[1] != 1 {
		t.Errorf("Degree seeds = %v, want [0 1]", seeds)
	}
}

func TestDegreeValidation(t *testing.T) {
	g := hubGraph(t)
	if _, err := Degree(g, 0); !errors.Is(err, ErrInvalidSeedSize) {
		t.Errorf("k=0 err = %v", err)
	}
	if _, err := Degree(g, 99); !errors.Is(err, ErrInvalidSeedSize) {
		t.Errorf("k>n err = %v", err)
	}
}

func TestSingleDiscount(t *testing.T) {
	g := hubGraph(t)
	seeds, err := SingleDiscount(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if seeds[0] != 0 || seeds[1] != 1 {
		t.Errorf("SingleDiscount seeds = %v, want hubs first", seeds)
	}
	if len(seeds) != 3 {
		t.Errorf("got %d seeds, want 3", len(seeds))
	}
	if _, err := SingleDiscount(g, 0); !errors.Is(err, ErrInvalidSeedSize) {
		t.Error("k=0 accepted")
	}
}

func TestDegreeDiscount(t *testing.T) {
	g := hubGraph(t)
	ig, err := workload.Assign(g, workload.UC01, nil)
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := DegreeDiscount(ig, 2)
	if err != nil {
		t.Fatal(err)
	}
	if seeds[0] != 0 || seeds[1] != 1 {
		t.Errorf("DegreeDiscount seeds = %v, want [0 1]", seeds)
	}
	if _, err := DegreeDiscount(ig, 0); !errors.Is(err, ErrInvalidSeedSize) {
		t.Error("k=0 accepted")
	}
}

func TestDegreeDiscountDiscourgesAdjacentSeeds(t *testing.T) {
	// Star + chain: 0 -> {1..5}; 1 -> {6,7}. With discounting, after picking
	// 0 the score of 1 drops, but 1 still has the second-highest raw degree;
	// the key assertion is that both returned seeds are distinct and valid.
	b := graph.NewBuilder(8)
	for v := 1; v <= 5; v++ {
		if err := b.AddEdge(0, graph.VertexID(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddEdge(1, 6); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 7); err != nil {
		t.Fatal(err)
	}
	ig, err := workload.Assign(b.Build(), workload.UC01, nil)
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := DegreeDiscount(ig, 2)
	if err != nil {
		t.Fatal(err)
	}
	if seeds[0] != 0 {
		t.Errorf("first seed = %d, want the hub 0", seeds[0])
	}
	if seeds[1] == seeds[0] {
		t.Error("duplicate seeds")
	}
}

func TestPageRankOnKarate(t *testing.T) {
	g := data.Karate()
	seeds, err := PageRank(g, 2, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The classic Karate hubs are vertices 0 and 33; PageRank on the
	// undirected network must surface at least one of them in the top 2.
	foundHub := false
	for _, s := range seeds {
		if s == 0 || s == 33 {
			foundHub = true
		}
	}
	if !foundHub {
		t.Errorf("PageRank top-2 = %v, expected to include vertex 0 or 33", seeds)
	}
}

func TestPageRankValidationAndOptions(t *testing.T) {
	g := hubGraph(t)
	if _, err := PageRank(g, 0, PageRankOptions{}); !errors.Is(err, ErrInvalidSeedSize) {
		t.Error("k=0 accepted")
	}
	// Out-of-range damping falls back to the default without error.
	if _, err := PageRank(g, 1, PageRankOptions{Damping: 7, Iterations: 5}); err != nil {
		t.Errorf("PageRank with odd options: %v", err)
	}
}

func TestHeuristicsReturnDistinctSeeds(t *testing.T) {
	g := data.Karate()
	ig, err := workload.Assign(g, workload.IWC, nil)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, seeds []graph.VertexID, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		seen := map[graph.VertexID]bool{}
		for _, s := range seeds {
			if seen[s] {
				t.Errorf("%s returned duplicate seed %d", name, s)
			}
			seen[s] = true
		}
		if len(seeds) != 5 {
			t.Errorf("%s returned %d seeds, want 5", name, len(seeds))
		}
	}
	s, err := Degree(g, 5)
	check("Degree", s, err)
	s, err = SingleDiscount(g, 5)
	check("SingleDiscount", s, err)
	s, err = DegreeDiscount(ig, 5)
	check("DegreeDiscount", s, err)
	s, err = PageRank(g, 5, PageRankOptions{})
	check("PageRank", s, err)
}
