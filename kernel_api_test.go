package imdist

import (
	"math"
	"path/filepath"
	"testing"
)

// kernelOracles builds the same sketch twice — once pinned to each kernel —
// through the public OracleOptions knob.
func kernelOracles(t *testing.T) (epoch, bitpack *InfluenceOracle) {
	t.Helper()
	ig := karateUC(t)
	build := func(kernel string) *InfluenceOracle {
		o, err := ig.NewInfluenceOracleWithOptions(OracleOptions{RRSets: 30000, Seed: 11, Workers: 2, Kernel: kernel})
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	return build("epoch"), build("bitpack")
}

// assertOraclesAnswerIdentically drives the full public query surface of two
// oracles and requires bitwise-equal answers: Influence over a spread of seed
// sets, BatchInfluence at two worker counts, GreedySeeds and TopVertices.
func assertOraclesAnswerIdentically(t *testing.T, want, got *InfluenceOracle) {
	t.Helper()
	n := want.NumVertices()
	seedSets := make([][]int, 0, 30)
	for i := 0; i < 30; i++ {
		size := 1 + i%5
		set := make([]int, 0, size)
		for j := 0; j < size; j++ {
			set = append(set, (i*13+j*5+1)%n)
		}
		seedSets = append(seedSets, set)
	}
	for i, seeds := range seedSets {
		w := mustInfluence(t, want, seeds)
		g := mustInfluence(t, got, seeds)
		if math.Float64bits(w) != math.Float64bits(g) {
			t.Fatalf("Influence(%v) [set %d]: %v vs %v", seeds, i, w, g)
		}
	}
	for _, workers := range []int{1, 4} {
		wantVals, wantErrs := want.BatchInfluence(seedSets, workers)
		gotVals, gotErrs := got.BatchInfluence(seedSets, workers)
		for i := range seedSets {
			if wantErrs[i] != nil || gotErrs[i] != nil {
				t.Fatalf("batch errs[%d]: %v vs %v", i, wantErrs[i], gotErrs[i])
			}
			if math.Float64bits(wantVals[i]) != math.Float64bits(gotVals[i]) {
				t.Fatalf("BatchInfluence workers=%d item %d: %v vs %v", workers, i, wantVals[i], gotVals[i])
			}
		}
	}
	wantSeeds := want.GreedySeeds(6)
	gotSeeds := got.GreedySeeds(6)
	if len(wantSeeds) != len(gotSeeds) {
		t.Fatalf("GreedySeeds lengths %d vs %d", len(wantSeeds), len(gotSeeds))
	}
	for i := range wantSeeds {
		if wantSeeds[i] != gotSeeds[i] {
			t.Fatalf("GreedySeeds[%d]: %d vs %d", i, wantSeeds[i], gotSeeds[i])
		}
	}
	wantTop, wantInfs := want.TopVertices(8)
	gotTop, gotInfs := got.TopVertices(8)
	for i := range wantTop {
		if wantTop[i] != gotTop[i] || math.Float64bits(wantInfs[i]) != math.Float64bits(gotInfs[i]) {
			t.Fatalf("TopVertices[%d]: (%d, %v) vs (%d, %v)", i, wantTop[i], wantInfs[i], gotTop[i], gotInfs[i])
		}
	}
}

func TestOracleOptionsKernel(t *testing.T) {
	epoch, bitpack := kernelOracles(t)
	if got := epoch.Kernel(); got != "epoch" {
		t.Errorf("epoch oracle reports kernel %q", got)
	}
	if got := bitpack.Kernel(); got != "bitpack" {
		t.Errorf("bitpack oracle reports kernel %q", got)
	}
	assertOraclesAnswerIdentically(t, epoch, bitpack)
}

func TestOracleOptionsKernelRejectsUnknown(t *testing.T) {
	ig := karateUC(t)
	if _, err := ig.NewInfluenceOracleWithOptions(OracleOptions{RRSets: 100, Seed: 1, Kernel: "simd"}); err == nil {
		t.Fatal("unknown kernel accepted by OracleOptions")
	}
	if _, err := ig.NewSketchBuilder(OracleOptions{Seed: 1, Kernel: "simd"}); err == nil {
		t.Fatal("unknown kernel accepted by NewSketchBuilder")
	}
}

// TestSetKernelOnLoadedSketch switches kernels on a sketch loaded from disk —
// the imserve scenario — and requires the loaded oracle's answers to stay
// bitwise-identical to the original build under both kernels.
func TestSetKernelOnLoadedSketch(t *testing.T) {
	ig := karateUC(t)
	built, err := ig.NewInfluenceOracleWithOptions(OracleOptions{RRSets: 30000, Seed: 11, Workers: 2, Kernel: "epoch"})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "karate.sketch")
	if err := built.SaveSketchFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSketchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.SetKernel("bitpack"); err != nil {
		t.Fatal(err)
	}
	if got := loaded.Kernel(); got != "bitpack" {
		t.Errorf("loaded sketch reports kernel %q after SetKernel", got)
	}
	assertOraclesAnswerIdentically(t, built, loaded)

	if err := loaded.SetKernel("avx"); err == nil {
		t.Fatal("unknown kernel accepted by SetKernel")
	}
	if got := loaded.Kernel(); got != "bitpack" {
		t.Errorf("failed SetKernel changed the kernel to %q", got)
	}
}
