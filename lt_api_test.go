package imdist

import (
	"math"
	"testing"
)

// TestLinearThresholdThroughPublicAPI exercises the LT extension end to end:
// iwc weights are valid LT weights, seed selection runs under every approach,
// and the LT oracle evaluates the result.
func TestLinearThresholdThroughPublicAPI(t *testing.T) {
	network, err := LoadDataset("Karate")
	if err != nil {
		t.Fatal(err)
	}
	ig, err := network.AssignProbabilities("iwc", 1)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := ig.NewInfluenceOracleForModel(LT, 50000, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range Approaches() {
		samples := 256
		if a == RIS {
			samples = 8192
		}
		res, err := ig.SelectSeeds(SeedOptions{
			Approach: a, SeedSize: 2, SampleNumber: samples, Seed: 9, Model: LT,
		})
		if err != nil {
			t.Fatalf("%s (LT): %v", a, err)
		}
		inf := mustInfluence(t, oracle, res.Seeds)
		if inf <= 2 || inf > 34 {
			t.Errorf("%s (LT): influence of %v = %v out of plausible range", a, res.Seeds, inf)
		}
	}
}

// TestLTOracleDiffersFromIC checks that the two models genuinely disagree on
// Karate under uc0.1 weights (uc0.1 is a valid LT weighting because the
// maximum in-degree is 17 and 17·0.1 > 1 is false... it is 1.7 > 1, so uc0.1
// must be rejected), and that iwc is accepted by both.
func TestLTModelValidation(t *testing.T) {
	network, err := LoadDataset("Karate")
	if err != nil {
		t.Fatal(err)
	}
	uc, err := network.AssignProbabilities("uc0.1", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 33 has in-degree 17, so its LT weights would sum to 1.7 — the LT
	// constructor must reject the workload.
	if _, err := uc.NewInfluenceOracleForModel(LT, 1000, 1); err == nil {
		t.Error("uc0.1 accepted as LT weights on Karate despite in-degree 17")
	}
	if _, err := uc.SelectSeeds(SeedOptions{Approach: Snapshot, SeedSize: 1, SampleNumber: 4, Model: LT}); err == nil {
		t.Error("SelectSeeds accepted invalid LT weights")
	}
	if _, err := uc.SelectSeeds(SeedOptions{Approach: Snapshot, SeedSize: 1, SampleNumber: 4, Model: "bogus"}); err == nil {
		t.Error("SelectSeeds accepted an unknown diffusion model")
	}
	if _, err := uc.NewInfluenceOracleForModel("bogus", 100, 1); err == nil {
		t.Error("NewInfluenceOracleForModel accepted an unknown model")
	}
}

// TestLTAndICGiveDifferentSpreads verifies the models are not silently
// aliased, using a diamond graph whose exact spreads differ: with uniform
// weight 0.5 on 0→1, 0→2, 1→3, 2→3 the IC spread of vertex 0 is
// 1 + 1 + (1 − 0.75²) = 2.4375 while the LT spread is 1 + 1 + 0.5 = 2.5.
func TestLTAndICGiveDifferentSpreads(t *testing.T) {
	network, err := NewNetwork(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	ig, err := network.AssignUniform(0.5)
	if err != nil {
		t.Fatal(err)
	}
	icOracle, err := ig.NewInfluenceOracle(300000, 3)
	if err != nil {
		t.Fatal(err)
	}
	ltOracle, err := ig.NewInfluenceOracleForModel(LT, 300000, 3)
	if err != nil {
		t.Fatal(err)
	}
	icInf := mustInfluence(t, icOracle, []int{0})
	ltInf := mustInfluence(t, ltOracle, []int{0})
	if math.Abs(icInf-2.4375) > 0.03 {
		t.Errorf("IC spread of vertex 0 = %v, want approx 2.4375", icInf)
	}
	if math.Abs(ltInf-2.5) > 0.03 {
		t.Errorf("LT spread of vertex 0 = %v, want approx 2.5", ltInf)
	}
}
